/**
 * @file
 * Shared scaffolding for the figure/table reproduction benches: run a
 * (system, benchmark) pair, collect statistics, print aligned tables.
 *
 * Every bench accepts:
 *   --scale=<f>    workload size multiplier (default 0.3; 1.0 = full)
 *   --seed=<n>     workload seed (default 1)
 *   --bench=a,b,c  restrict to a benchmark subset
 */

#ifndef TSOPER_BENCH_BENCH_UTIL_HH
#define TSOPER_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/system.hh"
#include "workload/generators.hh"

namespace tsoper::bench
{

struct Options
{
    double scale = 0.3;
    std::uint64_t seed = 1;
    std::vector<std::string> benchmarks = benchmarkNames();
};

inline Options
parseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--scale=", 0) == 0) {
            opt.scale = std::stod(arg.substr(8));
        } else if (arg.rfind("--seed=", 0) == 0) {
            opt.seed = std::stoull(arg.substr(7));
        } else if (arg.rfind("--bench=", 0) == 0) {
            opt.benchmarks.clear();
            std::string list = arg.substr(8);
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                const std::size_t comma = list.find(',', pos);
                opt.benchmarks.push_back(
                    list.substr(pos, comma == std::string::npos
                                         ? comma
                                         : comma - pos));
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else if (arg == "--help") {
            std::printf("options: --scale=<f> --seed=<n> --bench=a,b,c\n");
            std::exit(0);
        }
    }
    return opt;
}

/** One completed simulation, kept alive for stats inspection. */
struct Run
{
    Workload workload;
    std::unique_ptr<System> sys;
    Cycle cycles = 0;
};

inline Run
runSystem(EngineKind engine, const std::string &benchName,
          const Options &opt,
          const std::function<void(SystemConfig &)> &tweak = {})
{
    SystemConfig cfg = makeConfig(engine);
    if (tweak)
        tweak(cfg);
    Run run;
    run.workload =
        generateByName(benchName, cfg.numCores, opt.seed, opt.scale);
    run.sys = std::make_unique<System>(cfg, run.workload);
    run.cycles = run.sys->run();
    return run;
}

inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(values.size()));
}

/** Print one row: a left-justified label plus numeric columns. */
inline void
printRow(const std::string &label, const std::vector<double> &cols)
{
    std::printf("%-14s", label.c_str());
    for (double v : cols)
        std::printf(" %9.3f", v);
    std::printf("\n");
}

inline void
printHeader(const std::string &label,
            const std::vector<std::string> &cols)
{
    std::printf("%-14s", label.c_str());
    for (const auto &c : cols)
        std::printf(" %9s", c.c_str());
    std::printf("\n");
}

} // namespace tsoper::bench

#endif // TSOPER_BENCH_BENCH_UTIL_HH
