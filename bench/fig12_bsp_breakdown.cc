/**
 * @file
 * Reproduces Fig. 12: stepping stones from BSP to TSOPER — BSP,
 * BSP+SLC (multiversioning removes L1 exclusion), BSP+SLC+AGB
 * (unbounded AGB removes LLC exclusion), and TSOPER, normalized to
 * TSOPER.
 *
 * Expected shape (paper): monotone improvement BSP -> +SLC -> +AGB ->
 * TSOPER; +SLC buys ~3% avg, +AGB ~7% avg, the final epoch-size gap
 * ~3-5%.
 */

#include "bench_util.hh"

using namespace tsoper;
using namespace tsoper::bench;

int
main(int argc, char **argv)
{
    const Options opt = parseOptions(argc, argv);
    const std::vector<EngineKind> systems = {
        EngineKind::Bsp, EngineKind::BspSlc, EngineKind::BspSlcAgb};

    std::printf("Fig. 12 — execution time normalized to TSOPER "
                "(scale=%.2f)\n\n", opt.scale);
    printHeader("benchmark",
                {"BSP", "BSP+SLC", "+SLC+AGB", "TSOPER"});

    std::vector<std::vector<double>> perSystem(systems.size() + 1);
    for (const std::string &bench : opt.benchmarks) {
        const Run tsoper = runSystem(EngineKind::Tsoper, bench, opt);
        std::vector<double> cols;
        for (std::size_t s = 0; s < systems.size(); ++s) {
            const Run run = runSystem(systems[s], bench, opt);
            const double norm = static_cast<double>(run.cycles) /
                                static_cast<double>(tsoper.cycles);
            cols.push_back(norm);
            perSystem[s].push_back(norm);
        }
        cols.push_back(1.0);
        perSystem.back().push_back(1.0);
        printRow(bench, cols);
    }
    std::vector<double> gmeans;
    for (auto &v : perSystem)
        gmeans.push_back(geomean(v));
    std::printf("%.*s\n", 54, "----------------------------------------"
                              "--------------");
    printRow("gmean", gmeans);
    return 0;
}
