/**
 * @file
 * google-benchmark end-to-end simulator throughput: simulated cycles
 * and memory operations per host second for representative
 * (system, workload) pairs.
 */

#include <benchmark/benchmark.h>

#include "core/system.hh"
#include "workload/generators.hh"

using namespace tsoper;

static void
runPair(benchmark::State &state, EngineKind engine, const char *bench)
{
    const SystemConfig cfg = makeConfig(engine);
    const Workload w = generateByName(bench, cfg.numCores, 1, 0.05);
    std::uint64_t ops = 0;
    for (auto _ : state) {
        System sys(cfg, w);
        benchmark::DoNotOptimize(sys.run());
        ops += w.totalOps();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}

static void
BM_SimTsoperOcean(benchmark::State &state)
{
    runPair(state, EngineKind::Tsoper, "ocean_cp");
}
BENCHMARK(BM_SimTsoperOcean);

static void
BM_SimTsoperRadix(benchmark::State &state)
{
    runPair(state, EngineKind::Tsoper, "radix");
}
BENCHMARK(BM_SimTsoperRadix);

static void
BM_SimBaselineOcean(benchmark::State &state)
{
    runPair(state, EngineKind::None, "ocean_cp");
}
BENCHMARK(BM_SimBaselineOcean);

static void
BM_SimBspOcean(benchmark::State &state)
{
    runPair(state, EngineKind::Bsp, "ocean_cp");
}
BENCHMARK(BM_SimBspOcean);

static void
BM_SimHwRpDedup(benchmark::State &state)
{
    runPair(state, EngineKind::HwRp, "dedup");
}
BENCHMARK(BM_SimHwRpDedup);

BENCHMARK_MAIN();
