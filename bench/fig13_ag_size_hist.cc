/**
 * @file
 * Reproduces Fig. 13: the cumulative histogram of atomic-group sizes
 * (in cachelines) under TSOPER across all benchmarks.
 *
 * Expected shape (paper): AGs are overwhelmingly small — ~90% under 10
 * cachelines, and fewer than 1% would exceed the 80-line cap.
 */

#include "bench_util.hh"

using namespace tsoper;
using namespace tsoper::bench;

int
main(int argc, char **argv)
{
    const Options opt = parseOptions(argc, argv);

    Histogram merged;
    std::printf("Fig. 13 — atomic group size cumulative histogram "
                "(scale=%.2f)\n\n", opt.scale);
    printHeader("benchmark", {"AGs", "mean", "p50", "p90", "p99",
                              "max", "<=10", ">=80"});
    for (const std::string &bench : opt.benchmarks) {
        // The cap must not truncate the distribution we want to see:
        // measure with a generous cap, report the 80-line tail.
        const Run run = runSystem(EngineKind::Tsoper, bench, opt,
                                  [](SystemConfig &cfg) {
            cfg.agMaxLines = 512;
            cfg.agbSliceLines = 1024;
        });
        const Histogram &h = run.sys->stats().histogram("ag.size");
        for (const auto &[value, count] : h.buckets())
            merged.add(value, count);
        printRow(bench,
                 {static_cast<double>(h.samples()), h.mean(),
                  static_cast<double>(h.percentile(0.5)),
                  static_cast<double>(h.percentile(0.9)),
                  static_cast<double>(h.percentile(0.99)),
                  static_cast<double>(h.max()), h.cumulativeAt(10),
                  1.0 - h.cumulativeAt(79)});
    }

    std::printf("\ncumulative distribution over all benchmarks:\n");
    std::printf("  %8s %12s\n", "size", "cumulative");
    for (std::uint64_t s : {1, 2, 3, 5, 8, 10, 16, 24, 32, 48, 64, 80,
                            128}) {
        std::printf("  %8llu %11.1f%%\n",
                    static_cast<unsigned long long>(s),
                    100.0 * merged.cumulativeAt(s));
    }
    std::printf("\npaper: ~90%% of AGs under 10 lines; <1%% above 80 "
                "lines.\n");
    std::printf("measured: %.1f%% <= 10 lines; %.2f%% >= 80 lines\n",
                100.0 * merged.cumulativeAt(10),
                100.0 * (1.0 - merged.cumulativeAt(79)));
    return 0;
}
