/**
 * @file
 * Google-benchmark registration of the event-kernel micro patterns
 * (bench/kernel_patterns.hh): events/sec for the schedule-heavy,
 * zero-delay-heavy and mixed-latency mixes.  tools/tsoper_bench runs
 * the same patterns with its own wall-clock timer and emits
 * BENCH_kernel.json; this binary is for interactive profiling
 * (perf record ./bench/micro_kernel --benchmark_filter=Mixed).
 */

#include <benchmark/benchmark.h>

#include "kernel_patterns.hh"

namespace
{

constexpr std::uint64_t eventsPerIter = 200'000;

void
BM_KernelScheduleHeavy(benchmark::State &state)
{
    std::uint64_t executed = 0;
    for (auto _ : state)
        executed += tsoper::bench::patternScheduleHeavy(eventsPerIter);
    state.SetItemsProcessed(static_cast<std::int64_t>(executed));
}

void
BM_KernelZeroDelayHeavy(benchmark::State &state)
{
    std::uint64_t executed = 0;
    for (auto _ : state)
        executed += tsoper::bench::patternZeroDelayHeavy(eventsPerIter);
    state.SetItemsProcessed(static_cast<std::int64_t>(executed));
}

void
BM_KernelMixedLatency(benchmark::State &state)
{
    std::uint64_t executed = 0;
    for (auto _ : state)
        executed += tsoper::bench::patternMixedLatency(eventsPerIter);
    state.SetItemsProcessed(static_cast<std::int64_t>(executed));
}

BENCHMARK(BM_KernelScheduleHeavy);
BENCHMARK(BM_KernelZeroDelayHeavy);
BENCHMARK(BM_KernelMixedLatency);

} // namespace

BENCHMARK_MAIN();
