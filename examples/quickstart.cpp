/**
 * @file
 * Quickstart: build a TSOPER system, run a workload, inspect results.
 *
 *   $ ./build/examples/quickstart [benchmark] [scale]
 *
 * Walks through the library's primary API surface:
 *   1. pick a configuration (makeConfig chooses protocol + engine);
 *   2. generate (or hand-write) a multi-core workload;
 *   3. run it on a System;
 *   4. read execution statistics and the durable NVM state.
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "core/system.hh"
#include "workload/generators.hh"

using namespace tsoper;

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "ocean_cp";
    const double scale = argc > 2 ? std::stod(argv[2]) : 0.2;

    // 1. Configure: the full TSOPER proposal (SLC coherence + atomic
    //    groups + distributed AGB).  makeConfig(EngineKind::X) yields
    //    any of the paper's evaluated systems.
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.recordStores = true; // Keep the execution log (for auditing).
    cfg.describe(std::cout);

    // 2. A workload: one operation trace per core.  Profiles model the
    //    paper's 21 PARSEC/Splash benchmarks; you can also build a
    //    Workload by hand from TraceOps.
    const Workload w = generateByName(bench, cfg.numCores, /*seed=*/42,
                                      scale);
    std::printf("\nworkload '%s': %zu ops, %zu stores across %zu "
                "cores\n", w.name.c_str(), w.totalOps(),
                w.totalStores(), w.perCore.size());

    // 3. Run to completion (includes the final persist drain).
    System sys(cfg, w);
    const Cycle cycles = sys.run();
    std::printf("\nfinished in %llu cycles\n",
                static_cast<unsigned long long>(cycles));

    // 4. Results: counters, histograms, and the durable image.
    auto &stats = sys.stats();
    std::printf("  atomic groups persisted : %llu\n",
                static_cast<unsigned long long>(
                    stats.get("ag.persisted")));
    std::printf("  mean AG size (lines)    : %.2f\n",
                stats.histogram("ag.size").mean());
    std::printf("  persist writes (lines)  : %llu\n",
                static_cast<unsigned long long>(
                    stats.get("traffic.persist_wb")));
    std::printf("  NVM writes completed    : %llu\n",
                static_cast<unsigned long long>(
                    stats.get("nvm.writes_done")));
    std::printf("  mean persist list len   : %.2f\n",
                stats.histogram("slc.persist_list_len").mean());

    const auto durable = sys.durableImage();
    std::printf("  durable cachelines      : %zu\n", durable.size());
    std::printf("\nEvery store the workload executed is now durable in "
                "NVM, in TSO order.\n");
    return 0;
}
