/**
 * @file
 * Side-by-side comparison of all seven modelled systems on one
 * workload: execution time, persist traffic, and the mechanism-level
 * counters that explain the differences (Fig. 1's exclusion windows,
 * AG freezes, STW stalls).
 *
 *   $ ./build/examples/compare_models [benchmark] [scale]
 */

#include <cstdio>
#include <string>

#include "core/system.hh"
#include "workload/generators.hh"

using namespace tsoper;

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "bodytrack";
    const double scale = argc > 2 ? std::stod(argv[2]) : 0.25;

    std::printf("comparing persistency systems on '%s'\n\n",
                bench.c_str());
    std::printf("%-12s %10s %8s %9s %9s %s\n", "system", "cycles",
                "norm", "persists", "nvm-wr", "notes");

    double base = 0.0;
    for (EngineKind engine :
         {EngineKind::None, EngineKind::HwRp, EngineKind::Bsp,
          EngineKind::BspSlc, EngineKind::BspSlcAgb, EngineKind::Stw,
          EngineKind::Tsoper}) {
        SystemConfig cfg = makeConfig(engine);
        const Workload w =
            generateByName(bench, cfg.numCores, 1, scale);
        System sys(cfg, w);
        const Cycle cycles = sys.run();
        if (engine == EngineKind::None)
            base = static_cast<double>(cycles);
        auto &s = sys.stats();
        std::string notes;
        switch (engine) {
          case EngineKind::Bsp:
            notes = "L1-excl " +
                    std::to_string(s.get("bsp.l1_exclusion_cycles")) +
                    "cy, LLC-excl " +
                    std::to_string(s.get("bsp.llc_exclusion_cycles")) +
                    "cy";
            break;
          case EngineKind::Stw:
            notes = std::to_string(s.get("stw.stalls")) + " stalls, " +
                    std::to_string(s.get("stw.stall_cycles")) +
                    "cy stalled";
            break;
          case EngineKind::Tsoper:
            notes = std::to_string(s.get("ag.persisted")) + " AGs, " +
                    std::to_string(s.get("ag.store_blocks")) +
                    " store blocks";
            break;
          case EngineKind::HwRp:
            notes = std::to_string(s.get("hwrp.sfrs")) + " SFRs, " +
                    std::to_string(s.get("hwrp.spontaneous_persists")) +
                    " spontaneous";
            break;
          default:
            break;
        }
        std::printf("%-12s %10llu %8.3f %9llu %9llu %s\n",
                    toString(engine),
                    static_cast<unsigned long long>(cycles),
                    static_cast<double>(cycles) / base,
                    static_cast<unsigned long long>(
                        s.get("traffic.persist_wb")),
                    static_cast<unsigned long long>(
                        s.get("nvm.writes_done")),
                    notes.c_str());
    }
    std::printf("\nThe paper's Fig. 11 ordering — HW-RP fastest, then "
                "TSOPER, then BSP, then STW —\nfalls out of which "
                "exclusion windows each design removes (Fig. 1).\n");
    return 0;
}
