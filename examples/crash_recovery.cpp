/**
 * @file
 * Crash injection and recovery audit — the paper's core guarantee,
 * demonstrated end to end.
 *
 *   $ ./build/examples/crash_recovery [crash_cycle]
 *
 * Runs the same workload twice on TSOPER: once to completion, once
 * crashed cold at an arbitrary cycle.  The durable state reconstructed
 * after the crash (NVM image + the committed prefix of the AGB) is
 * audited against the recorded execution: it must be a downward-closed
 * cut of the store order under TSO — per-core program order, per-word
 * coherence order, reads-from dependencies, and atomic-group
 * atomicity.  For contrast, the same crash under HW-RP is audited
 * against the weaker SFR contract.
 */

#include <cstdio>
#include <string>

#include "core/crash_checker.hh"
#include "core/system.hh"
#include "workload/generators.hh"

using namespace tsoper;

namespace
{

void
auditCrash(EngineKind engine, PersistModel model, const Workload &w,
           Cycle crashAt)
{
    SystemConfig cfg = makeConfig(engine);
    cfg.recordStores = true;
    System sys(cfg, w);
    const auto durable = sys.runUntilCrash(crashAt);
    const CheckResult res = checkDurableState(durable, sys.storeLog(),
                                              model, cfg.numCores);
    std::size_t words = 0;
    for (const auto &[line, lw] : durable) {
        (void)line;
        for (StoreId id : lw)
            words += (id != invalidStore) ? 1 : 0;
    }
    std::printf("  %-7s crash@%-8llu durable-words=%-6zu required-"
                "stores=%-6zu -> %s\n",
                toString(engine),
                static_cast<unsigned long long>(crashAt), words,
                res.requiredStores, res.ok ? "CONSISTENT" : "VIOLATION");
    if (!res.ok)
        std::printf("    detail: %s\n", res.detail.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    const Workload w =
        generateByName("canneal", cfg.numCores, 7, 0.08);

    // Learn the run length, then crash at several points.
    Cycle full = 0;
    {
        System sys(cfg, w);
        full = sys.run();
    }
    std::printf("full run: %llu cycles\n\n",
                static_cast<unsigned long long>(full));

    if (argc > 1) {
        const Cycle at = std::stoull(argv[1]);
        auditCrash(EngineKind::Tsoper, PersistModel::StrictTso, w, at);
        return 0;
    }

    std::printf("strict TSO persistency (TSOPER) — any crash point "
                "yields a legal TSO cut:\n");
    for (unsigned i = 1; i <= 6; ++i)
        auditCrash(EngineKind::Tsoper, PersistModel::StrictTso, w,
                   full * i / 7);

    std::printf("\nnaive strict persistency (STW) — also correct, just "
                "slow:\n");
    auditCrash(EngineKind::Stw, PersistModel::StrictTso, w, full / 2);

    std::printf("\nrelaxed persistency (HW-RP) audited against its own "
                "(weaker) SFR contract:\n");
    auditCrash(EngineKind::HwRp, PersistModel::RelaxedSfr, w, full / 2);

    std::printf("\nrelaxed persistency audited against *strict TSO* — "
                "showing what TSOPER\nguarantees and a relaxed model "
                "does not (a violation here is expected):\n");
    auditCrash(EngineKind::HwRp, PersistModel::StrictTso, w, full / 2);
    return 0;
}
