/**
 * @file
 * A guided tour of sharing-list persistency (§IV) on a single
 * cacheline, driving the SLC protocol directly and printing the list
 * after every step: prepend-at-head, non-destructive invalidation,
 * multiversioning, and the tail-to-head persist-token walk.
 */

#include <cstdio>
#include <vector>

#include "coherence/slc.hh"
#include "mem/llc.hh"
#include "mem/nvm.hh"
#include "noc/mesh.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

using namespace tsoper;

namespace
{

/** TSOPER-style hooks: keep invalid dirty versions, no downgrades. */
struct KeepVersionsHooks : ProtocolHooks
{
    bool dropsInvalidDirty() const override { return false; }
    bool writebackOnDowngrade() const override { return false; }
    Cycle
    onDirtyExpose(CoreId owner, LineAddr, CoreId requester, bool write,
                  Cycle now) override
    {
        std::printf("      [freeze] core %d's AG frozen by core %d's "
                    "%s\n", owner, requester, write ? "write" : "read");
        return now;
    }
};

constexpr Addr kAddr = 0x5000'0000;
const LineAddr kLine = lineOf(kAddr);

void
printList(const SlcProtocol &slc, unsigned cores)
{
    std::printf("    list (head..tail): ");
    // Reconstruct order by walking tails: simple O(n^2) scan.
    std::vector<CoreId> order;
    for (unsigned c = 0; c < cores; ++c)
        if (slc.hasNode(static_cast<CoreId>(c), kLine))
            order.push_back(static_cast<CoreId>(c));
    // Sort by "distance to tail": a node that is persist-tail first.
    // For display purposes walk from each and count successors.
    std::printf("%u node(s):", static_cast<unsigned>(order.size()));
    for (CoreId c : order) {
        std::printf("  core%d[%s%s%s]", c,
                    slc.nodeValid(c, kLine) ? "V" : "i",
                    slc.nodeDirty(c, kLine) ? "D" : "c",
                    slc.nodeIsTail(c, kLine) ? ",tail" : "");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    SystemConfig cfg;
    EventQueue eq;
    StatsRegistry stats;
    Mesh mesh(cfg, stats);
    Nvm nvm(cfg, eq, stats);
    Llc llc(cfg, nvm, stats);
    SlcProtocol slc(cfg, eq, mesh, llc, nvm, stats);
    KeepVersionsHooks hooks;
    slc.setHooks(&hooks);

    auto store = [&](CoreId c, std::uint64_t seq) {
        bool done = false;
        slc.store(c, kAddr, makeStoreId(c, seq), [&](Cycle) {
            done = true;
        });
        eq.runUntil([&] { return done; });
    };
    auto load = [&](CoreId c) {
        bool done = false;
        slc.load(c, kAddr, [&](Cycle, StoreId) { done = true; });
        eq.runUntil([&] { return done; });
    };

    std::printf("One cacheline, four cores.  V=valid i=invalid D=dirty "
                "c=clean.\n\n");

    std::printf("1. core 0 writes: sole head, exclusive version v0\n");
    store(0, 0);
    printList(slc, 4);

    std::printf("\n2. core 1 writes: prepends at head; core 0's v0 is "
                "invalidated NON-destructively\n   (multiversioning: "
                "two versions co-exist; v0 holds the persist token)\n");
    store(1, 0);
    printList(slc, 4);

    std::printf("\n3. core 2 reads: prepends as a clean sharer; the "
                "dirty owner is frozen but stays valid\n");
    load(2);
    printList(slc, 4);

    std::printf("\n4. persist v0 (tail): it unlinks, the token passes "
                "headwards\n");
    slc.persistComplete(0, kLine, eq.now());
    printList(slc, 4);

    std::printf("\n5. persist v1: still valid, so it stays as a clean "
                "sharer (LLC updated in parallel)\n");
    slc.persistComplete(1, kLine, eq.now());
    printList(slc, 4);

    std::printf("\n6. core 3 writes: clean copies below are droppable; "
                "a fresh exclusive version forms\n");
    store(3, 0);
    printList(slc, 4);

    std::printf("\nLLC now holds v1 (the last persisted version): "
                "word0=%llx\n",
                static_cast<unsigned long long>(
                    llc.lookup(kLine)[wordOf(kAddr)]));
    std::printf("\nCoherence ran ahead at the head of the list; "
                "persistency followed at the tail.\n");
    return 0;
}
