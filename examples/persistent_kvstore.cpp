/**
 * @file
 * A persistent key-value store on TSOPER — a hand-written workload
 * (no generator) showing how unmodified TSO software gets crash
 * consistency for free, and how §II-D marker stores give software
 * control over atomic-group boundaries.
 *
 * The "application": each core updates records of a shared hash table.
 * An update writes the record's two value words, then a version word —
 * ordinary TSO code, exactly how a log-free store would be written for
 * volatile memory.  Under strict TSO persistency, after *any* crash a
 * record whose version word is durable is guaranteed to have both
 * value words durable too (the version write is program-ordered after
 * them).  The audit checks precisely this invariant on the durable
 * image.
 */

#include <cstdio>

#include "core/crash_checker.hh"
#include "core/system.hh"
#include "sim/rng.hh"
#include "workload/trace.hh"

using namespace tsoper;

namespace
{

constexpr unsigned kRecords = 512;
constexpr unsigned kUpdatesPerCore = 220;

/** Record r: word addresses of (value0, value1, version). */
Addr
recordWord(unsigned record, unsigned word)
{
    // One record per cacheline-half; spread across the shared region.
    return layout::sharedAddr(record * 4 + word);
}

Workload
buildKvWorkload(unsigned cores, std::uint64_t seed)
{
    Workload w;
    w.name = "kvstore";
    w.perCore.resize(cores);
    w.numLocks = 64;
    for (unsigned c = 0; c < cores; ++c) {
        Rng rng(seed * 31 + c);
        Trace &t = w.perCore[c];
        for (unsigned u = 0; u < kUpdatesPerCore; ++u) {
            const unsigned r = static_cast<unsigned>(rng.below(kRecords));
            const unsigned lock = r % w.numLocks;
            t.push_back({OpType::LockAcq, layout::lockAddr(lock), lock});
            t.push_back({OpType::Load, recordWord(r, 2), 0});  // version
            t.push_back({OpType::Store, recordWord(r, 0), 0}); // value0
            t.push_back({OpType::Store, recordWord(r, 1), 0}); // value1
            t.push_back({OpType::Store, recordWord(r, 2), 0}); // version
            // §II-D: a marker store freezes the current atomic group,
            // bounding how much of the update stream one AG may span —
            // the hook software-defined epochs would use.
            if (u % 16 == 15)
                t.push_back({OpType::Marker, 0, 0});
            t.push_back({OpType::LockRel, layout::lockAddr(lock), lock});
            t.push_back({OpType::Compute, 0,
                         static_cast<std::uint32_t>(rng.range(2, 12))});
        }
    }
    return w;
}

/** Is every version-durable record fully durable? */
bool
auditRecords(const std::unordered_map<LineAddr, LineWords> &durable)
{
    unsigned committed = 0, torn = 0;
    for (unsigned r = 0; r < kRecords; ++r) {
        const Addr va = recordWord(r, 2);
        auto it = durable.find(lineOf(va));
        if (it == durable.end() ||
            it->second[wordOf(va)] == invalidStore)
            continue; // Version never durable: record not committed.
        ++committed;
        for (unsigned wd = 0; wd < 2; ++wd) {
            const Addr a = recordWord(r, wd);
            auto vit = durable.find(lineOf(a));
            if (vit == durable.end() ||
                vit->second[wordOf(a)] == invalidStore) {
                ++torn;
                std::printf("    TORN record %u: version durable but "
                            "value%u missing\n", r, wd);
            }
        }
    }
    std::printf("    committed records: %u, torn: %u\n", committed,
                torn);
    return torn == 0;
}

} // namespace

int
main()
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.recordStores = true;
    const Workload w = buildKvWorkload(cfg.numCores, 11);
    std::printf("persistent KV store: %zu updates across %u cores\n",
                w.totalOps() / 7, cfg.numCores);

    Cycle full = 0;
    {
        System sys(cfg, w);
        full = sys.run();
    }

    bool allOk = true;
    for (unsigned i = 1; i <= 5; ++i) {
        const Cycle crashAt = full * i / 6;
        System sys(cfg, w);
        const auto durable = sys.runUntilCrash(crashAt);
        std::printf("  crash @ %llu:\n",
                    static_cast<unsigned long long>(crashAt));
        const bool recordsOk = auditRecords(durable);
        const CheckResult res =
            checkDurableState(durable, sys.storeLog(),
                              PersistModel::StrictTso, cfg.numCores);
        std::printf("    TSO-cut audit: %s\n",
                    res.ok ? "CONSISTENT" : res.detail.c_str());
        allOk = allOk && recordsOk && res.ok;
    }
    std::printf("\n%s\n", allOk
                              ? "No torn records at any crash point: "
                                "plain TSO code is crash-consistent "
                                "under TSOPER."
                              : "AUDIT FAILED");
    return allOk ? 0 : 1;
}
