file(REMOVE_RECURSE
  "CMakeFiles/tsoper_cli.dir/tsoper_sim.cc.o"
  "CMakeFiles/tsoper_cli.dir/tsoper_sim.cc.o.d"
  "tsoper_sim"
  "tsoper_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsoper_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
