# Empty compiler generated dependencies file for tsoper_cli.
# This may be replaced when dependencies are built.
