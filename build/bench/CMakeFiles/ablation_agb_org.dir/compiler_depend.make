# Empty compiler generated dependencies file for ablation_agb_org.
# This may be replaced when dependencies are built.
