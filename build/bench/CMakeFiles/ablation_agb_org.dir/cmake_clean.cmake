file(REMOVE_RECURSE
  "CMakeFiles/ablation_agb_org.dir/ablation_agb_org.cc.o"
  "CMakeFiles/ablation_agb_org.dir/ablation_agb_org.cc.o.d"
  "ablation_agb_org"
  "ablation_agb_org.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_agb_org.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
