# Empty dependencies file for fig13_ag_size_hist.
# This may be replaced when dependencies are built.
