file(REMOVE_RECURSE
  "CMakeFiles/fig13_ag_size_hist.dir/fig13_ag_size_hist.cc.o"
  "CMakeFiles/fig13_ag_size_hist.dir/fig13_ag_size_hist.cc.o.d"
  "fig13_ag_size_hist"
  "fig13_ag_size_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ag_size_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
