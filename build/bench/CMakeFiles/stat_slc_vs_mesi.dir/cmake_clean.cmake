file(REMOVE_RECURSE
  "CMakeFiles/stat_slc_vs_mesi.dir/stat_slc_vs_mesi.cc.o"
  "CMakeFiles/stat_slc_vs_mesi.dir/stat_slc_vs_mesi.cc.o.d"
  "stat_slc_vs_mesi"
  "stat_slc_vs_mesi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_slc_vs_mesi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
