# Empty compiler generated dependencies file for stat_slc_vs_mesi.
# This may be replaced when dependencies are built.
