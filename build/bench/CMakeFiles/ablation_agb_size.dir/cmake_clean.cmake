file(REMOVE_RECURSE
  "CMakeFiles/ablation_agb_size.dir/ablation_agb_size.cc.o"
  "CMakeFiles/ablation_agb_size.dir/ablation_agb_size.cc.o.d"
  "ablation_agb_size"
  "ablation_agb_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_agb_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
