# Empty compiler generated dependencies file for ablation_agb_size.
# This may be replaced when dependencies are built.
