file(REMOVE_RECURSE
  "CMakeFiles/ablation_evict_buffer.dir/ablation_evict_buffer.cc.o"
  "CMakeFiles/ablation_evict_buffer.dir/ablation_evict_buffer.cc.o.d"
  "ablation_evict_buffer"
  "ablation_evict_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_evict_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
