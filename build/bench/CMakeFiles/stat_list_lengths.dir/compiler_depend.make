# Empty compiler generated dependencies file for stat_list_lengths.
# This may be replaced when dependencies are built.
