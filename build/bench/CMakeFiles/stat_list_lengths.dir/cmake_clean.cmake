file(REMOVE_RECURSE
  "CMakeFiles/stat_list_lengths.dir/stat_list_lengths.cc.o"
  "CMakeFiles/stat_list_lengths.dir/stat_list_lengths.cc.o.d"
  "stat_list_lengths"
  "stat_list_lengths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_list_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
