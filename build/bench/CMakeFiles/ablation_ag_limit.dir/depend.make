# Empty dependencies file for ablation_ag_limit.
# This may be replaced when dependencies are built.
