file(REMOVE_RECURSE
  "CMakeFiles/ablation_ag_limit.dir/ablation_ag_limit.cc.o"
  "CMakeFiles/ablation_ag_limit.dir/ablation_ag_limit.cc.o.d"
  "ablation_ag_limit"
  "ablation_ag_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ag_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
