file(REMOVE_RECURSE
  "CMakeFiles/table_protocol_complexity.dir/table_protocol_complexity.cc.o"
  "CMakeFiles/table_protocol_complexity.dir/table_protocol_complexity.cc.o.d"
  "table_protocol_complexity"
  "table_protocol_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_protocol_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
