# Empty compiler generated dependencies file for table_protocol_complexity.
# This may be replaced when dependencies are built.
