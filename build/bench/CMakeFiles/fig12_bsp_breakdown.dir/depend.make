# Empty dependencies file for fig12_bsp_breakdown.
# This may be replaced when dependencies are built.
