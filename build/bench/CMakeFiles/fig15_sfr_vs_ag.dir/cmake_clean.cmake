file(REMOVE_RECURSE
  "CMakeFiles/fig15_sfr_vs_ag.dir/fig15_sfr_vs_ag.cc.o"
  "CMakeFiles/fig15_sfr_vs_ag.dir/fig15_sfr_vs_ag.cc.o.d"
  "fig15_sfr_vs_ag"
  "fig15_sfr_vs_ag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_sfr_vs_ag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
