# Empty compiler generated dependencies file for fig15_sfr_vs_ag.
# This may be replaced when dependencies are built.
