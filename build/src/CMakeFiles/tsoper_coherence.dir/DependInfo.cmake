
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coherence/directory.cc" "src/CMakeFiles/tsoper_coherence.dir/coherence/directory.cc.o" "gcc" "src/CMakeFiles/tsoper_coherence.dir/coherence/directory.cc.o.d"
  "/root/repo/src/coherence/mesi.cc" "src/CMakeFiles/tsoper_coherence.dir/coherence/mesi.cc.o" "gcc" "src/CMakeFiles/tsoper_coherence.dir/coherence/mesi.cc.o.d"
  "/root/repo/src/coherence/protocol.cc" "src/CMakeFiles/tsoper_coherence.dir/coherence/protocol.cc.o" "gcc" "src/CMakeFiles/tsoper_coherence.dir/coherence/protocol.cc.o.d"
  "/root/repo/src/coherence/slc.cc" "src/CMakeFiles/tsoper_coherence.dir/coherence/slc.cc.o" "gcc" "src/CMakeFiles/tsoper_coherence.dir/coherence/slc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tsoper_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tsoper_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tsoper_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
