# Empty dependencies file for tsoper_coherence.
# This may be replaced when dependencies are built.
