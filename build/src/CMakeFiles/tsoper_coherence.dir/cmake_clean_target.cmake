file(REMOVE_RECURSE
  "libtsoper_coherence.a"
)
