file(REMOVE_RECURSE
  "CMakeFiles/tsoper_coherence.dir/coherence/directory.cc.o"
  "CMakeFiles/tsoper_coherence.dir/coherence/directory.cc.o.d"
  "CMakeFiles/tsoper_coherence.dir/coherence/mesi.cc.o"
  "CMakeFiles/tsoper_coherence.dir/coherence/mesi.cc.o.d"
  "CMakeFiles/tsoper_coherence.dir/coherence/protocol.cc.o"
  "CMakeFiles/tsoper_coherence.dir/coherence/protocol.cc.o.d"
  "CMakeFiles/tsoper_coherence.dir/coherence/slc.cc.o"
  "CMakeFiles/tsoper_coherence.dir/coherence/slc.cc.o.d"
  "libtsoper_coherence.a"
  "libtsoper_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsoper_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
