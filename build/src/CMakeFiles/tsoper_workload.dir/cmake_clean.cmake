file(REMOVE_RECURSE
  "CMakeFiles/tsoper_workload.dir/workload/generators.cc.o"
  "CMakeFiles/tsoper_workload.dir/workload/generators.cc.o.d"
  "CMakeFiles/tsoper_workload.dir/workload/profiles.cc.o"
  "CMakeFiles/tsoper_workload.dir/workload/profiles.cc.o.d"
  "CMakeFiles/tsoper_workload.dir/workload/trace.cc.o"
  "CMakeFiles/tsoper_workload.dir/workload/trace.cc.o.d"
  "CMakeFiles/tsoper_workload.dir/workload/trace_io.cc.o"
  "CMakeFiles/tsoper_workload.dir/workload/trace_io.cc.o.d"
  "libtsoper_workload.a"
  "libtsoper_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsoper_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
