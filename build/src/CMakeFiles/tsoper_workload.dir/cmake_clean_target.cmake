file(REMOVE_RECURSE
  "libtsoper_workload.a"
)
