# Empty compiler generated dependencies file for tsoper_workload.
# This may be replaced when dependencies are built.
