# Empty compiler generated dependencies file for tsoper_sim.
# This may be replaced when dependencies are built.
