file(REMOVE_RECURSE
  "CMakeFiles/tsoper_sim.dir/sim/config.cc.o"
  "CMakeFiles/tsoper_sim.dir/sim/config.cc.o.d"
  "CMakeFiles/tsoper_sim.dir/sim/debug.cc.o"
  "CMakeFiles/tsoper_sim.dir/sim/debug.cc.o.d"
  "CMakeFiles/tsoper_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/tsoper_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/tsoper_sim.dir/sim/log.cc.o"
  "CMakeFiles/tsoper_sim.dir/sim/log.cc.o.d"
  "CMakeFiles/tsoper_sim.dir/sim/stats.cc.o"
  "CMakeFiles/tsoper_sim.dir/sim/stats.cc.o.d"
  "CMakeFiles/tsoper_sim.dir/sim/store_log.cc.o"
  "CMakeFiles/tsoper_sim.dir/sim/store_log.cc.o.d"
  "libtsoper_sim.a"
  "libtsoper_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsoper_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
