file(REMOVE_RECURSE
  "libtsoper_sim.a"
)
