
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache_array.cc" "src/CMakeFiles/tsoper_mem.dir/mem/cache_array.cc.o" "gcc" "src/CMakeFiles/tsoper_mem.dir/mem/cache_array.cc.o.d"
  "/root/repo/src/mem/llc.cc" "src/CMakeFiles/tsoper_mem.dir/mem/llc.cc.o" "gcc" "src/CMakeFiles/tsoper_mem.dir/mem/llc.cc.o.d"
  "/root/repo/src/mem/nvm.cc" "src/CMakeFiles/tsoper_mem.dir/mem/nvm.cc.o" "gcc" "src/CMakeFiles/tsoper_mem.dir/mem/nvm.cc.o.d"
  "/root/repo/src/mem/store_buffer.cc" "src/CMakeFiles/tsoper_mem.dir/mem/store_buffer.cc.o" "gcc" "src/CMakeFiles/tsoper_mem.dir/mem/store_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tsoper_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
