file(REMOVE_RECURSE
  "libtsoper_mem.a"
)
