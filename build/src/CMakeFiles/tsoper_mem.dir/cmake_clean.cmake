file(REMOVE_RECURSE
  "CMakeFiles/tsoper_mem.dir/mem/cache_array.cc.o"
  "CMakeFiles/tsoper_mem.dir/mem/cache_array.cc.o.d"
  "CMakeFiles/tsoper_mem.dir/mem/llc.cc.o"
  "CMakeFiles/tsoper_mem.dir/mem/llc.cc.o.d"
  "CMakeFiles/tsoper_mem.dir/mem/nvm.cc.o"
  "CMakeFiles/tsoper_mem.dir/mem/nvm.cc.o.d"
  "CMakeFiles/tsoper_mem.dir/mem/store_buffer.cc.o"
  "CMakeFiles/tsoper_mem.dir/mem/store_buffer.cc.o.d"
  "libtsoper_mem.a"
  "libtsoper_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsoper_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
