# Empty compiler generated dependencies file for tsoper_mem.
# This may be replaced when dependencies are built.
