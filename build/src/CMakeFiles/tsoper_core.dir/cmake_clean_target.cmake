file(REMOVE_RECURSE
  "libtsoper_core.a"
)
