file(REMOVE_RECURSE
  "CMakeFiles/tsoper_core.dir/core/agb.cc.o"
  "CMakeFiles/tsoper_core.dir/core/agb.cc.o.d"
  "CMakeFiles/tsoper_core.dir/core/atomic_group.cc.o"
  "CMakeFiles/tsoper_core.dir/core/atomic_group.cc.o.d"
  "CMakeFiles/tsoper_core.dir/core/bsp_engine.cc.o"
  "CMakeFiles/tsoper_core.dir/core/bsp_engine.cc.o.d"
  "CMakeFiles/tsoper_core.dir/core/cpu.cc.o"
  "CMakeFiles/tsoper_core.dir/core/cpu.cc.o.d"
  "CMakeFiles/tsoper_core.dir/core/crash_checker.cc.o"
  "CMakeFiles/tsoper_core.dir/core/crash_checker.cc.o.d"
  "CMakeFiles/tsoper_core.dir/core/engine.cc.o"
  "CMakeFiles/tsoper_core.dir/core/engine.cc.o.d"
  "CMakeFiles/tsoper_core.dir/core/hwrp_engine.cc.o"
  "CMakeFiles/tsoper_core.dir/core/hwrp_engine.cc.o.d"
  "CMakeFiles/tsoper_core.dir/core/recovery.cc.o"
  "CMakeFiles/tsoper_core.dir/core/recovery.cc.o.d"
  "CMakeFiles/tsoper_core.dir/core/stw_engine.cc.o"
  "CMakeFiles/tsoper_core.dir/core/stw_engine.cc.o.d"
  "CMakeFiles/tsoper_core.dir/core/system.cc.o"
  "CMakeFiles/tsoper_core.dir/core/system.cc.o.d"
  "CMakeFiles/tsoper_core.dir/core/tsoper_engine.cc.o"
  "CMakeFiles/tsoper_core.dir/core/tsoper_engine.cc.o.d"
  "libtsoper_core.a"
  "libtsoper_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsoper_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
