
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agb.cc" "src/CMakeFiles/tsoper_core.dir/core/agb.cc.o" "gcc" "src/CMakeFiles/tsoper_core.dir/core/agb.cc.o.d"
  "/root/repo/src/core/atomic_group.cc" "src/CMakeFiles/tsoper_core.dir/core/atomic_group.cc.o" "gcc" "src/CMakeFiles/tsoper_core.dir/core/atomic_group.cc.o.d"
  "/root/repo/src/core/bsp_engine.cc" "src/CMakeFiles/tsoper_core.dir/core/bsp_engine.cc.o" "gcc" "src/CMakeFiles/tsoper_core.dir/core/bsp_engine.cc.o.d"
  "/root/repo/src/core/cpu.cc" "src/CMakeFiles/tsoper_core.dir/core/cpu.cc.o" "gcc" "src/CMakeFiles/tsoper_core.dir/core/cpu.cc.o.d"
  "/root/repo/src/core/crash_checker.cc" "src/CMakeFiles/tsoper_core.dir/core/crash_checker.cc.o" "gcc" "src/CMakeFiles/tsoper_core.dir/core/crash_checker.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/tsoper_core.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/tsoper_core.dir/core/engine.cc.o.d"
  "/root/repo/src/core/hwrp_engine.cc" "src/CMakeFiles/tsoper_core.dir/core/hwrp_engine.cc.o" "gcc" "src/CMakeFiles/tsoper_core.dir/core/hwrp_engine.cc.o.d"
  "/root/repo/src/core/recovery.cc" "src/CMakeFiles/tsoper_core.dir/core/recovery.cc.o" "gcc" "src/CMakeFiles/tsoper_core.dir/core/recovery.cc.o.d"
  "/root/repo/src/core/stw_engine.cc" "src/CMakeFiles/tsoper_core.dir/core/stw_engine.cc.o" "gcc" "src/CMakeFiles/tsoper_core.dir/core/stw_engine.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/tsoper_core.dir/core/system.cc.o" "gcc" "src/CMakeFiles/tsoper_core.dir/core/system.cc.o.d"
  "/root/repo/src/core/tsoper_engine.cc" "src/CMakeFiles/tsoper_core.dir/core/tsoper_engine.cc.o" "gcc" "src/CMakeFiles/tsoper_core.dir/core/tsoper_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tsoper_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tsoper_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tsoper_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tsoper_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tsoper_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
