# Empty compiler generated dependencies file for tsoper_core.
# This may be replaced when dependencies are built.
