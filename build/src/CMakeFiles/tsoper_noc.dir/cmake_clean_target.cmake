file(REMOVE_RECURSE
  "libtsoper_noc.a"
)
