file(REMOVE_RECURSE
  "CMakeFiles/tsoper_noc.dir/noc/mesh.cc.o"
  "CMakeFiles/tsoper_noc.dir/noc/mesh.cc.o.d"
  "libtsoper_noc.a"
  "libtsoper_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsoper_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
