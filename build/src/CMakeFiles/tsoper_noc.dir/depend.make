# Empty dependencies file for tsoper_noc.
# This may be replaced when dependencies are built.
