# Empty compiler generated dependencies file for sharing_list_trace.
# This may be replaced when dependencies are built.
