file(REMOVE_RECURSE
  "CMakeFiles/sharing_list_trace.dir/sharing_list_trace.cpp.o"
  "CMakeFiles/sharing_list_trace.dir/sharing_list_trace.cpp.o.d"
  "sharing_list_trace"
  "sharing_list_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharing_list_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
