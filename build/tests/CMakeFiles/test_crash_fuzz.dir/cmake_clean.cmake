file(REMOVE_RECURSE
  "CMakeFiles/test_crash_fuzz.dir/test_crash_fuzz.cc.o"
  "CMakeFiles/test_crash_fuzz.dir/test_crash_fuzz.cc.o.d"
  "test_crash_fuzz"
  "test_crash_fuzz.pdb"
  "test_crash_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crash_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
