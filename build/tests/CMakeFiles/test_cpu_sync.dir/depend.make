# Empty dependencies file for test_cpu_sync.
# This may be replaced when dependencies are built.
