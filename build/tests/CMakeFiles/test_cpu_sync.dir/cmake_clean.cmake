file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_sync.dir/test_cpu_sync.cc.o"
  "CMakeFiles/test_cpu_sync.dir/test_cpu_sync.cc.o.d"
  "test_cpu_sync"
  "test_cpu_sync.pdb"
  "test_cpu_sync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
