file(REMOVE_RECURSE
  "CMakeFiles/test_slc_protocol.dir/test_slc_protocol.cc.o"
  "CMakeFiles/test_slc_protocol.dir/test_slc_protocol.cc.o.d"
  "test_slc_protocol"
  "test_slc_protocol.pdb"
  "test_slc_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slc_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
