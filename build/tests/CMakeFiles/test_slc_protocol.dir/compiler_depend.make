# Empty compiler generated dependencies file for test_slc_protocol.
# This may be replaced when dependencies are built.
