file(REMOVE_RECURSE
  "CMakeFiles/test_atomic_group.dir/test_atomic_group.cc.o"
  "CMakeFiles/test_atomic_group.dir/test_atomic_group.cc.o.d"
  "test_atomic_group"
  "test_atomic_group.pdb"
  "test_atomic_group[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atomic_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
