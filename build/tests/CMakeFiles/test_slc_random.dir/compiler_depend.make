# Empty compiler generated dependencies file for test_slc_random.
# This may be replaced when dependencies are built.
