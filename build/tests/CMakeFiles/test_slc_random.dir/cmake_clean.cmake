file(REMOVE_RECURSE
  "CMakeFiles/test_slc_random.dir/test_slc_random.cc.o"
  "CMakeFiles/test_slc_random.dir/test_slc_random.cc.o.d"
  "test_slc_random"
  "test_slc_random.pdb"
  "test_slc_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slc_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
