# Empty compiler generated dependencies file for test_system_smoke.
# This may be replaced when dependencies are built.
