file(REMOVE_RECURSE
  "CMakeFiles/test_system_smoke.dir/test_system_smoke.cc.o"
  "CMakeFiles/test_system_smoke.dir/test_system_smoke.cc.o.d"
  "test_system_smoke"
  "test_system_smoke.pdb"
  "test_system_smoke[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
