file(REMOVE_RECURSE
  "CMakeFiles/test_mesi_protocol.dir/test_mesi_protocol.cc.o"
  "CMakeFiles/test_mesi_protocol.dir/test_mesi_protocol.cc.o.d"
  "test_mesi_protocol"
  "test_mesi_protocol.pdb"
  "test_mesi_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mesi_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
