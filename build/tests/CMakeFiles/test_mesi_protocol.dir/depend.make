# Empty dependencies file for test_mesi_protocol.
# This may be replaced when dependencies are built.
