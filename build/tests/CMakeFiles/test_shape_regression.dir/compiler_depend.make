# Empty compiler generated dependencies file for test_shape_regression.
# This may be replaced when dependencies are built.
