file(REMOVE_RECURSE
  "CMakeFiles/test_store_log.dir/test_store_log.cc.o"
  "CMakeFiles/test_store_log.dir/test_store_log.cc.o.d"
  "test_store_log"
  "test_store_log.pdb"
  "test_store_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
