# Empty dependencies file for test_store_log.
# This may be replaced when dependencies are built.
