# Empty dependencies file for test_crash_checker.
# This may be replaced when dependencies are built.
