file(REMOVE_RECURSE
  "CMakeFiles/test_crash_checker.dir/test_crash_checker.cc.o"
  "CMakeFiles/test_crash_checker.dir/test_crash_checker.cc.o.d"
  "test_crash_checker"
  "test_crash_checker.pdb"
  "test_crash_checker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crash_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
