file(REMOVE_RECURSE
  "CMakeFiles/test_mesi_random.dir/test_mesi_random.cc.o"
  "CMakeFiles/test_mesi_random.dir/test_mesi_random.cc.o.d"
  "test_mesi_random"
  "test_mesi_random.pdb"
  "test_mesi_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mesi_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
