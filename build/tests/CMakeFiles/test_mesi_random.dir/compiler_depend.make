# Empty compiler generated dependencies file for test_mesi_random.
# This may be replaced when dependencies are built.
