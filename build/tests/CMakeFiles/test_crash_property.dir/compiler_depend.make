# Empty compiler generated dependencies file for test_crash_property.
# This may be replaced when dependencies are built.
