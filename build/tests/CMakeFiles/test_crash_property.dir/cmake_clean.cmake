file(REMOVE_RECURSE
  "CMakeFiles/test_crash_property.dir/test_crash_property.cc.o"
  "CMakeFiles/test_crash_property.dir/test_crash_property.cc.o.d"
  "test_crash_property"
  "test_crash_property.pdb"
  "test_crash_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crash_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
