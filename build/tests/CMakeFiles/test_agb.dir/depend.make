# Empty dependencies file for test_agb.
# This may be replaced when dependencies are built.
