file(REMOVE_RECURSE
  "CMakeFiles/test_agb.dir/test_agb.cc.o"
  "CMakeFiles/test_agb.dir/test_agb.cc.o.d"
  "test_agb"
  "test_agb.pdb"
  "test_agb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
