file(REMOVE_RECURSE
  "CMakeFiles/test_nvm.dir/test_nvm.cc.o"
  "CMakeFiles/test_nvm.dir/test_nvm.cc.o.d"
  "test_nvm"
  "test_nvm.pdb"
  "test_nvm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
