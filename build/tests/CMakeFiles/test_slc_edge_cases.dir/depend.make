# Empty dependencies file for test_slc_edge_cases.
# This may be replaced when dependencies are built.
