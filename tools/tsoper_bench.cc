/**
 * @file
 * tsoper_bench — wall-clock benchmark driver for the simulation
 * kernel.  Runs the three micro patterns from bench/kernel_patterns.hh
 * plus one fixed-seed fig11 cell (tsoper engine on ocean_cp) and
 * writes BENCH_kernel.json: the perf trajectory's datapoints.
 *
 *   tsoper_bench                      # full run, BENCH_kernel.json
 *   tsoper_bench --quick --verify-out # CI smoke (bench_smoke ctest)
 *
 * Options:
 *   --out=<file>     output path            (default BENCH_kernel.json)
 *   --quick          ~20x fewer events; for CI smoke, not for numbers
 *   --repeat=<n>     repetitions per pattern (default 3)
 *   --median         keep the median-wall-clock repetition instead of
 *                    the fastest (steadier on noisy/shared hosts)
 *   --threads=<csv>  thread counts for the pdes sweep (default 1,2,4,8;
 *                    points above the host CPU count warn — they
 *                    measure contention, not scaling)
 *   --verify-out     re-read the emitted JSON and validate the schema
 *
 * Schema ("schema": "tsoper.bench.kernel/v3"):
 *   {
 *     "schema": "...", "quick": bool,
 *     "provenance": {"git_sha": s, "hostname": s, "cpu_model": s,
 *                    "cmake_preset": s, "build_type": s},
 *     "micro": {"<pattern>": {"events": u, "wall_seconds": f,
 *                             "events_per_sec": f}, ...},
 *     "pdes": {"shards": u, "lookahead": u, "host_cpus": u,
 *              "sweep": [{"threads": u, "events": u,
 *                         "wall_seconds": f, "events_per_sec": f,
 *                         "speedup": f}, ...]},
 *     "fig11": {"engine": "tsoper", "bench": "ocean_cp", "seed": u,
 *               "scale": f, "cycles": u, "events": u,
 *               "wall_seconds": f, "events_per_sec": f}
 *   }
 * The pdes sweep runs the mixed-latency blend over the sharded kernel
 * (sim/shard_queue.hh) at each thread count; "speedup" is relative to
 * the sweep's threads=1 entry.  host_cpus records how many CPUs the
 * measuring host actually had — speedups are only meaningful up to
 * that bound (docs/pdes.md).  provenance records where the numbers came
 * from (dirty trees get a "-dirty" sha suffix) so a committed
 * BENCH_kernel.json is never mystery data; preset/build type are baked
 * in at compile time, the rest is read at run time, best effort —
 * fields degrade to "unknown", never fail the run.
 * docs/perf.md documents how to read and track these numbers.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/system.hh"
#include "kernel_patterns.hh"
#include "sim/json.hh"
#include "workload/generators.hh"

#ifndef TSOPER_BENCH_PRESET
#define TSOPER_BENCH_PRESET "unknown"
#endif
#ifndef TSOPER_BENCH_BUILD_TYPE
#define TSOPER_BENCH_BUILD_TYPE "unknown"
#endif

using namespace tsoper;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Pick the reported wall-clock from @p samples: the fastest, or with
 *  @p median the median (lower middle for even counts — an actual
 *  measured run, not an average of two). */
double
keptSeconds(std::vector<double> samples, bool median)
{
    std::sort(samples.begin(), samples.end());
    return median ? samples[(samples.size() - 1) / 2] : samples.front();
}

/** Run @p body @p repeat times; report one (events, seconds) sample
 *  selected per @p median.  The event count is a pure function of the
 *  pattern, so any run's count serves. */
Json
timeRuns(unsigned repeat, bool median,
         const std::function<std::uint64_t()> &body)
{
    std::uint64_t events = 0;
    std::vector<double> secs;
    secs.reserve(repeat);
    for (unsigned r = 0; r < repeat; ++r) {
        const auto start = std::chrono::steady_clock::now();
        events = body();
        secs.push_back(secondsSince(start));
    }
    const double kept = keptSeconds(std::move(secs), median);
    Json entry = Json::object();
    entry.set("events", events);
    entry.set("wall_seconds", kept);
    entry.set("events_per_sec",
              kept > 0.0 ? static_cast<double>(events) / kept : 0.0);
    return entry;
}

/** First output line of @p cmd, or "" if it fails to run. */
std::string
firstLineOf(const char *cmd)
{
    FILE *pipe = popen(cmd, "r");
    if (!pipe)
        return "";
    char buf[256] = {};
    const bool got = std::fgets(buf, sizeof(buf), pipe) != nullptr;
    const int status = pclose(pipe);
    if (!got || status != 0)
        return "";
    std::string line(buf);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
        line.pop_back();
    return line;
}

Json
buildProvenance()
{
    Json p = Json::object();
    std::string sha =
        firstLineOf("git rev-parse --short=12 HEAD 2>/dev/null");
    if (!sha.empty() &&
        !firstLineOf("git status --porcelain 2>/dev/null").empty())
        sha += "-dirty";
    p.set("git_sha", sha.empty() ? "unknown" : sha);

    char host[256] = {};
    p.set("hostname",
          gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0'
              ? host
              : "unknown");

    std::string cpu = "unknown";
    std::ifstream cpuinfo("/proc/cpuinfo");
    for (std::string line; std::getline(cpuinfo, line);) {
        if (line.rfind("model name", 0) == 0) {
            const std::size_t colon = line.find(':');
            if (colon != std::string::npos) {
                std::size_t begin = colon + 1;
                while (begin < line.size() && line[begin] == ' ')
                    ++begin;
                cpu = line.substr(begin);
            }
            break;
        }
    }
    p.set("cpu_model", cpu);

    p.set("cmake_preset", TSOPER_BENCH_PRESET);
    p.set("build_type", TSOPER_BENCH_BUILD_TYPE);
    return p;
}

bool
verifyDocument(const Json &doc, std::string *err)
{
    const Json *schema = doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != "tsoper.bench.kernel/v3") {
        *err = "missing or wrong schema tag";
        return false;
    }
    const Json *prov = doc.find("provenance");
    if (!prov || !prov->isObject()) {
        *err = "missing provenance block";
        return false;
    }
    for (const char *field : {"git_sha", "hostname", "cpu_model",
                              "cmake_preset", "build_type"}) {
        const Json *v = prov->find(field);
        if (!v || !v->isString() || v->asString().empty()) {
            *err = std::string("provenance.") + field +
                   " missing or empty";
            return false;
        }
    }
    const Json *micro = doc.find("micro");
    if (!micro || !micro->isObject() || micro->size() < 3) {
        *err = "micro must be an object with >= 3 patterns";
        return false;
    }
    for (const auto &[name, entry] : micro->members()) {
        for (const char *field :
             {"events", "wall_seconds", "events_per_sec"}) {
            const Json *v = entry.find(field);
            if (!v || !v->isNumber() || v->asDouble() <= 0.0) {
                *err = "micro." + name + "." + field +
                       " missing or non-positive";
                return false;
            }
        }
    }
    const Json *pdes = doc.find("pdes");
    if (!pdes || !pdes->isObject()) {
        *err = "missing pdes block";
        return false;
    }
    for (const char *field : {"shards", "lookahead", "host_cpus"}) {
        const Json *v = pdes->find(field);
        if (!v || !v->isNumber()) {
            *err = std::string("pdes.") + field + " missing";
            return false;
        }
    }
    const Json *sweep = pdes->find("sweep");
    if (!sweep || !sweep->isArray() || sweep->size() == 0) {
        *err = "pdes.sweep must be a non-empty array";
        return false;
    }
    for (std::size_t i = 0; i < sweep->size(); ++i) {
        const Json &entry = sweep->at(i);
        for (const char *field : {"threads", "events", "wall_seconds",
                                  "events_per_sec", "speedup"}) {
            const Json *v = entry.find(field);
            if (!v || !v->isNumber() || v->asDouble() <= 0.0) {
                *err = "pdes.sweep[" + std::to_string(i) + "]." + field +
                       " missing or non-positive";
                return false;
            }
        }
    }
    const Json *fig11 = doc.find("fig11");
    if (!fig11 || !fig11->isObject()) {
        *err = "missing fig11 cell";
        return false;
    }
    for (const char *field : {"engine", "bench", "seed", "scale",
                              "cycles", "events", "wall_seconds",
                              "events_per_sec"}) {
        if (!fig11->find(field)) {
            *err = std::string("fig11.") + field + " missing";
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_kernel.json";
    bool quick = false;
    bool verifyOut = false;
    bool median = false;
    unsigned repeat = 3;
    std::vector<unsigned> threadList = {1, 2, 4, 8};
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0) {
            out = arg.substr(6);
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg == "--verify-out") {
            verifyOut = true;
        } else if (arg.rfind("--repeat=", 0) == 0) {
            repeat = static_cast<unsigned>(std::stoul(arg.substr(9)));
        } else if (arg == "--median") {
            median = true;
        } else if (arg.rfind("--threads=", 0) == 0) {
            threadList.clear();
            std::stringstream ts(arg.substr(10));
            std::string tok;
            while (std::getline(ts, tok, ','))
                if (!tok.empty())
                    threadList.push_back(
                        static_cast<unsigned>(std::stoul(tok)));
            if (threadList.empty()) {
                std::fprintf(stderr, "--threads needs a CSV list\n");
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: tsoper_bench [--out=F] [--quick] "
                        "[--repeat=N] [--median] [--threads=CSV] "
                        "[--verify-out]\n");
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return 2;
        }
    }

    const std::uint64_t microEvents = quick ? 100'000 : 2'000'000;
    const double fig11Scale = quick ? 0.05 : 0.3;
    if (quick)
        repeat = 1;

    Json doc = Json::object();
    doc.set("schema", "tsoper.bench.kernel/v3");
    doc.set("quick", quick);
    doc.set("provenance", buildProvenance());

    Json micro = Json::object();
    struct Pattern
    {
        const char *name;
        std::uint64_t (*fn)(std::uint64_t);
    };
    const Pattern patterns[] = {
        {"schedule_heavy",
         [](std::uint64_t n) { return bench::patternScheduleHeavy(n); }},
        {"zero_delay_heavy",
         [](std::uint64_t n) { return bench::patternZeroDelayHeavy(n); }},
        {"mixed_latency",
         [](std::uint64_t n) { return bench::patternMixedLatency(n); }},
    };
    for (const Pattern &p : patterns) {
        Json entry =
            timeRuns(repeat, median, [&] { return p.fn(microEvents); });
        std::printf("%-18s %12.0f events/s (%.3fs, %llu events)\n",
                    p.name, entry["events_per_sec"].asDouble(),
                    entry["wall_seconds"].asDouble(),
                    static_cast<unsigned long long>(
                        entry["events"].asUint()));
        micro.set(p.name, std::move(entry));
    }
    doc.set("micro", std::move(micro));

    // The pdes sweep: the mixed-latency blend sharded across one
    // EventQueue per mesh tile, at each requested worker count.
    {
        const unsigned shards = 16;  // 4x4 mesh: one shard per tile.
        const Cycle lookahead = 3;   // SystemConfig default hopLatency.
        Json pdes = Json::object();
        pdes.set("shards", shards);
        pdes.set("lookahead", static_cast<std::uint64_t>(lookahead));
        pdes.set("host_cpus",
                 static_cast<std::uint64_t>(
                     std::thread::hardware_concurrency()));
        Json sweep = Json::array();
        double baseline = 0.0;
        const unsigned hw =
            std::max(1u, std::thread::hardware_concurrency());
        for (const unsigned t : threadList) {
            if (t > hw)
                std::fprintf(stderr,
                             "warning: sweep point threads=%u "
                             "oversubscribes the %u hardware CPU%s — "
                             "its speedup measures contention, not "
                             "scaling\n",
                             t, hw, hw == 1 ? "" : "s");
            Json entry = timeRuns(repeat, median, [&] {
                return bench::patternMixedLatencySharded(
                    microEvents, shards, t, lookahead);
            });
            const double secs = entry["wall_seconds"].asDouble();
            if (sweep.size() == 0)
                baseline = secs;
            const double speedup =
                secs > 0.0 && baseline > 0.0 ? baseline / secs : 1.0;
            entry.set("threads", t);
            entry.set("speedup", speedup);
            std::printf("%-18s %12.0f events/s (%.3fs, %llu events, "
                        "%.2fx)\n",
                        ("pdes_threads_" + std::to_string(t)).c_str(),
                        entry["events_per_sec"].asDouble(), secs,
                        static_cast<unsigned long long>(
                            entry["events"].asUint()),
                        speedup);
            sweep.push(std::move(entry));
        }
        pdes.set("sweep", std::move(sweep));
        doc.set("pdes", std::move(pdes));
    }

    // One fixed-seed fig11 cell: the tsoper engine on ocean_cp.  The
    // workload is generated outside the timed region; the timer covers
    // System construction + run, the unit a campaign cell pays.
    {
        const std::uint64_t seed = 1;
        SystemConfig cfg = makeConfig(EngineKind::Tsoper);
        const Workload w =
            generateByName("ocean_cp", cfg.numCores, seed, fig11Scale);
        Json cell = Json::object();
        std::uint64_t events = 0;
        Cycle cycles = 0;
        std::vector<double> secs;
        secs.reserve(repeat);
        for (unsigned r = 0; r < repeat; ++r) {
            const auto start = std::chrono::steady_clock::now();
            System sys(cfg, w);
            cycles = sys.run();
            secs.push_back(secondsSince(start));
            events = sys.eventQueue().executed();
        }
        const double kept = keptSeconds(std::move(secs), median);
        cell.set("engine", "tsoper");
        cell.set("bench", "ocean_cp");
        cell.set("seed", seed);
        cell.set("scale", fig11Scale);
        cell.set("cycles", static_cast<std::uint64_t>(cycles));
        cell.set("events", events);
        cell.set("wall_seconds", kept);
        cell.set("events_per_sec",
                 kept > 0.0 ? static_cast<double>(events) / kept : 0.0);
        std::printf("%-18s %12.0f events/s (%.3fs, %llu events, "
                    "%llu cycles)\n",
                    "fig11_cell", cell["events_per_sec"].asDouble(),
                    kept, static_cast<unsigned long long>(events),
                    static_cast<unsigned long long>(cycles));
        doc.set("fig11", std::move(cell));
    }

    {
        std::ofstream os(out);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n", out.c_str());
            return 1;
        }
        os << doc.dump(2) << "\n";
    }
    std::printf("wrote %s\n", out.c_str());

    if (verifyOut) {
        std::ifstream is(out);
        std::stringstream ss;
        ss << is.rdbuf();
        Json parsed;
        std::string err;
        if (!Json::parse(ss.str(), &parsed, &err)) {
            std::fprintf(stderr, "verify-out: %s does not parse: %s\n",
                         out.c_str(), err.c_str());
            return 1;
        }
        if (!verifyDocument(parsed, &err)) {
            std::fprintf(stderr, "verify-out: %s\n", err.c_str());
            return 1;
        }
        std::printf("verify-out: schema ok\n");
    }
    return 0;
}
