/**
 * @file
 * tsoper_campaign — parallel experiment-campaign driver.
 *
 *   tsoper_campaign --campaign=crash-matrix --jobs=8
 *   tsoper_campaign --campaign=fig11 --out=fig11.json
 *   tsoper_campaign --spec=nightly.spec --jobs=4 --verify-out
 *   tsoper_campaign --engines=tsoper,stw --benches=radix,dedup \
 *                   --scales=0.1 --seeds=1,2 --crash-at=0.5 --check
 *   tsoper_campaign --campaign=fig11 --isolate=subprocess
 *   tsoper_campaign --campaign=fig11 --resume=results/fig11
 *   tsoper_campaign --list-campaigns
 *   tsoper_campaign --campaign=fig12 --dry-run
 *   tsoper_campaign --campaign=fig11 --serve=7421
 *   tsoper_campaign --connect=host:7421 --jobs=8
 *   tsoper_campaign --campaign=mini --serve=0 --workers-local=2
 *
 * A campaign expands into the cartesian grid of run manifests, runs
 * them on a work-stealing thread pool (per-cell timeout, retry with
 * exponential backoff on transient failure), and writes one JSON
 * report with every cell's status and full statistics (default:
 * BENCH_campaign.json).  Every finished cell is also appended durably
 * to a write-ahead journal (journal.jsonl next to the report) so an
 * interrupted sweep can be continued with --resume.
 *
 * Options:
 *   --campaign=<name>      built-in campaign (see --list-campaigns)
 *   --spec=<file>          campaign spec file (docs/campaigns.md)
 *   --engines=a,b|all      matrix flags, used when neither --campaign
 *   --benches=a,b|all      nor --spec is given; defaults mirror
 *   --scales=f,...         CampaignSpec's defaults
 *   --seeds=n,...
 *   --crash-at=f,...       crash fractions in (0,1]
 *   --check                audit durable state per cell
 *   --cores=<n> --ag-max-lines=<n> --agb-slice-lines=<n>
 *   --name=<s>             campaign name in the report
 *   --jobs=<n>             worker threads   (default: hardware)
 *   --threads=<n>          event-kernel threads per cell, overriding
 *                          the spec (default: spec's, 0 = sequential;
 *                          keep jobs x threads <= host CPUs)
 *   --timeout-ms=<n>       per-cell budget  (default: spec's, 120000)
 *   --retries=<n>          extra attempts   (default: spec's, 1)
 *   --backoff-ms=<n>       first retry delay, doubling per attempt
 *                          (default 250; 0 disables backoff)
 *   --isolate=<mode>       none (default) = run cells in-process;
 *                          subprocess = fork/exec tsoper_sim per
 *                          attempt (crash/rlimit containment)
 *   --sim-bin=<path>       tsoper_sim binary for --isolate=subprocess
 *                          (default: next to this executable)
 *   --mem-limit-mb=<n>     RLIMIT_AS per subprocess cell; 0 = none
 *   --out=<file>           report path      (default: BENCH_campaign.json)
 *   --resume=<dir>         reload <dir>/journal.jsonl and re-run only
 *                          the cells it does not already cover
 *   --no-journal           skip the write-ahead journal
 *   --verify-out           re-read the report and fail unless it
 *                          parses and has no failed cells
 *   --dry-run              print the expanded manifests and exit
 *   --quiet                suppress per-cell progress lines
 *   --list-campaigns       print built-in campaigns and exit
 *
 * Distributed mode (docs/campaigns.md, "Distributed campaigns"):
 *   --serve=<port>         coordinator: lease cells to TCP workers
 *                          (0 = ephemeral; the bound port is printed)
 *   --connect=<host:port>  worker: execute leases from a coordinator;
 *                          needs no spec — cells arrive on the wire
 *   --workers-local=<n>    with --serve: fork n loopback workers of
 *                          this binary (CI / single-machine use)
 *   --worker-name=<s>      worker name in coordinator logs
 *   --grace-ms=<n>         coordinator: fall back to the local runner
 *                          after n ms with no connected worker
 *   --heartbeat-timeout-ms=<n>  declare a silent worker dead
 *   --straggler-ms=<n>     re-lease tail cells older than n ms to
 *                          idle workers (0 disables)
 *   --no-local-fallback    fail-stop instead of degrading locally
 *   --net-fault=K:SEED[:RATE]  deterministic wire-fault injection
 *                          (K = drop|dup|truncate|delay) on this
 *                          side's send path; negative-control testing
 *   --canonical-out=<file> also write the canonical (volatile-field-
 *                          free) report projection; byte-identical
 *                          across local and distributed runs
 *   --chaos-kill-worker=<n>  with --workers-local: SIGKILL the first
 *                          forked worker after n merged results
 *   --die-after=<n>        worker: vanish (no goodbye) after n
 *                          results — deterministic crash stand-in
 *
 * Exit codes:
 *   0  every cell ok            3  invalid spec / unknown campaign
 *   1  some cells not ok        4  report/journal I/O or verify failure
 *   2  usage error              5  worker: connection lost for good
 *                               6  worker: --die-after fired
 */

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "campaign/builtin.hh"
#include "campaign/coordinator.hh"
#include "campaign/journal.hh"
#include "campaign/runner.hh"
#include "campaign/spec.hh"
#include "campaign/worker.hh"
#include "workload/generators.hh"

using namespace tsoper;
using namespace tsoper::campaign;

namespace
{

struct CliOptions
{
    std::string campaignName;
    std::string specFile;
    std::string out = "BENCH_campaign.json";
    bool outTouched = false;
    std::string resumeDir;
    std::string isolate = "none";
    std::string simBin;
    unsigned memLimitMb = 0;
    int backoffMs = -1; ///< -1 = keep RunnerOptions' default.
    bool noJournal = false;
    unsigned jobs = 0;
    int timeoutMs = -1; ///< -1 = take the spec's value.
    int retries = -1;
    int threads = -1; ///< -1 = take the spec's value.
    bool verifyOut = false;
    bool dryRun = false;
    bool quiet = false;
    bool listCampaigns = false;
    CampaignSpec matrix; ///< From matrix flags.
    bool matrixTouched = false;

    // Distributed mode.
    bool serve = false;
    unsigned servePort = 0;
    std::string connectTo; ///< host:port; non-empty = worker mode.
    unsigned workersLocal = 0;
    std::string workerName;
    unsigned graceMs = 10'000;
    unsigned heartbeatTimeoutMs = 10'000;
    unsigned stragglerMs = 10'000;
    bool localFallback = true;
    net::WireFault fault;
    std::string canonicalOut;
    std::uint64_t chaosKillWorker = 0;
    std::uint64_t dieAfter = 0;
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: tsoper_campaign (--campaign=NAME | --spec=FILE | matrix "
        "flags)\n"
        "                       [--jobs=N] [--threads=N] [--timeout-ms=N] "
        "[--retries=N]\n"
        "                       [--backoff-ms=N] [--isolate=none|subprocess]\n"
        "                       [--sim-bin=PATH] [--mem-limit-mb=N]\n"
        "                       [--out=FILE] [--resume=DIR] [--no-journal]\n"
        "                       [--verify-out] [--dry-run] [--quiet]\n"
        "                       [--list-campaigns]\n"
        "distributed:  --serve=PORT [--workers-local=N] [--grace-ms=N]\n"
        "              [--heartbeat-timeout-ms=N] [--straggler-ms=N]\n"
        "              [--no-local-fallback] [--chaos-kill-worker=N]\n"
        "              --connect=HOST:PORT [--worker-name=S] [--die-after=N]\n"
        "              [--net-fault=drop|dup|truncate|delay:SEED[:RATE]]\n"
        "              [--canonical-out=FILE]\n"
        "matrix flags: --engines=a,b|all --benches=a,b|all --scales=f,..\n"
        "              --seeds=n,.. --crash-at=f,.. --check --cores=N\n"
        "              --ag-max-lines=N --agb-slice-lines=N --name=S\n");
    std::exit(code);
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> items;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::string item =
            s.substr(pos, comma == std::string::npos ? std::string::npos
                                                     : comma - pos);
        if (!item.empty())
            items.push_back(item);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return items;
}

/**
 * Strict decimal parse for option values: the whole string must be
 * digits and the result must land in [min, max], otherwise die with a
 * message that names the flag and its accepted range ("--jobs=8x" and
 * "--jobs=0" both get a real explanation, not a bare usage dump).
 */
unsigned long
parseBoundedOrDie(const std::string &value, const char *flag,
                  unsigned long min, unsigned long max)
{
    bool numeric = !value.empty();
    for (char c : value)
        numeric = numeric && c >= '0' && c <= '9';
    unsigned long parsed = 0;
    if (numeric) {
        try {
            parsed = std::stoul(value);
        } catch (const std::exception &) {
            numeric = false; // out of unsigned long's range
        }
    }
    if (!numeric || parsed < min || parsed > max) {
        std::fprintf(stderr,
                     "%s expects an integer between %lu and %lu, got "
                     "'%s'\n",
                     flag, min, max, value.c_str());
        std::exit(2);
    }
    return parsed;
}

template <typename Parse>
auto
parseListOrDie(const std::string &value, const char *what, Parse parse)
{
    std::vector<decltype(parse(std::string()))> out;
    for (const std::string &item : splitCsv(value)) {
        try {
            out.push_back(parse(item));
        } catch (...) {
            std::fprintf(stderr, "bad %s value: %s\n", what,
                         item.c_str());
            usage(2);
        }
    }
    if (out.empty()) {
        std::fprintf(stderr, "empty %s list\n", what);
        usage(2);
    }
    return out;
}

CliOptions
parseCli(int argc, char **argv)
{
    CliOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto val = [&](const char *prefix) {
            return arg.substr(std::string(prefix).size());
        };
        try {
            if (arg.rfind("--campaign=", 0) == 0) {
                opt.campaignName = val("--campaign=");
            } else if (arg.rfind("--spec=", 0) == 0) {
                opt.specFile = val("--spec=");
            } else if (arg.rfind("--out=", 0) == 0) {
                opt.out = val("--out=");
                opt.outTouched = true;
            } else if (arg.rfind("--resume=", 0) == 0) {
                opt.resumeDir = val("--resume=");
            } else if (arg.rfind("--isolate=", 0) == 0) {
                opt.isolate = val("--isolate=");
                if (opt.isolate != "none" &&
                    opt.isolate != "subprocess") {
                    std::fprintf(stderr,
                                 "--isolate expects 'none' or "
                                 "'subprocess', got '%s'\n",
                                 opt.isolate.c_str());
                    std::exit(2);
                }
            } else if (arg.rfind("--sim-bin=", 0) == 0) {
                opt.simBin = val("--sim-bin=");
            } else if (arg.rfind("--mem-limit-mb=", 0) == 0) {
                opt.memLimitMb = static_cast<unsigned>(
                    parseBoundedOrDie(val("--mem-limit-mb="),
                                      "--mem-limit-mb", 0, 1 << 20));
            } else if (arg.rfind("--backoff-ms=", 0) == 0) {
                opt.backoffMs = static_cast<int>(
                    parseBoundedOrDie(val("--backoff-ms="),
                                      "--backoff-ms", 0, 3'600'000));
            } else if (arg == "--no-journal") {
                opt.noJournal = true;
            } else if (arg.rfind("--jobs=", 0) == 0) {
                opt.jobs = static_cast<unsigned>(parseBoundedOrDie(
                    val("--jobs="), "--jobs", 1, 1024));
            } else if (arg.rfind("--timeout-ms=", 0) == 0) {
                opt.timeoutMs = static_cast<int>(
                    parseBoundedOrDie(val("--timeout-ms="),
                                      "--timeout-ms", 0, 86'400'000));
            } else if (arg.rfind("--threads=", 0) == 0) {
                opt.threads = static_cast<int>(parseBoundedOrDie(
                    val("--threads="), "--threads", 0, 64));
            } else if (arg.rfind("--retries=", 0) == 0) {
                opt.retries = static_cast<int>(parseBoundedOrDie(
                    val("--retries="), "--retries", 0, 100));
            } else if (arg.rfind("--serve=", 0) == 0) {
                opt.serve = true;
                opt.servePort = static_cast<unsigned>(
                    parseBoundedOrDie(val("--serve="), "--serve", 0,
                                      65'535));
            } else if (arg.rfind("--connect=", 0) == 0) {
                opt.connectTo = val("--connect=");
            } else if (arg.rfind("--workers-local=", 0) == 0) {
                opt.workersLocal = static_cast<unsigned>(
                    parseBoundedOrDie(val("--workers-local="),
                                      "--workers-local", 1, 64));
            } else if (arg.rfind("--worker-name=", 0) == 0) {
                opt.workerName = val("--worker-name=");
            } else if (arg.rfind("--grace-ms=", 0) == 0) {
                opt.graceMs = static_cast<unsigned>(
                    parseBoundedOrDie(val("--grace-ms="), "--grace-ms",
                                      0, 3'600'000));
            } else if (arg.rfind("--heartbeat-timeout-ms=", 0) == 0) {
                opt.heartbeatTimeoutMs = static_cast<unsigned>(
                    parseBoundedOrDie(val("--heartbeat-timeout-ms="),
                                      "--heartbeat-timeout-ms", 100,
                                      3'600'000));
            } else if (arg.rfind("--straggler-ms=", 0) == 0) {
                opt.stragglerMs = static_cast<unsigned>(
                    parseBoundedOrDie(val("--straggler-ms="),
                                      "--straggler-ms", 0,
                                      3'600'000));
            } else if (arg == "--no-local-fallback") {
                opt.localFallback = false;
            } else if (arg.rfind("--net-fault=", 0) == 0) {
                std::string err;
                if (!net::parseWireFault(val("--net-fault="),
                                         &opt.fault, &err)) {
                    std::fprintf(stderr, "--net-fault: %s\n",
                                 err.c_str());
                    std::exit(2);
                }
            } else if (arg.rfind("--canonical-out=", 0) == 0) {
                opt.canonicalOut = val("--canonical-out=");
            } else if (arg.rfind("--chaos-kill-worker=", 0) == 0) {
                opt.chaosKillWorker = parseBoundedOrDie(
                    val("--chaos-kill-worker="), "--chaos-kill-worker",
                    1, 1'000'000);
            } else if (arg.rfind("--die-after=", 0) == 0) {
                opt.dieAfter = parseBoundedOrDie(
                    val("--die-after="), "--die-after", 1, 1'000'000);
            } else if (arg == "--verify-out") {
                opt.verifyOut = true;
            } else if (arg == "--dry-run") {
                opt.dryRun = true;
            } else if (arg == "--quiet") {
                opt.quiet = true;
            } else if (arg == "--list-campaigns") {
                opt.listCampaigns = true;
            } else if (arg.rfind("--engines=", 0) == 0) {
                const std::string v = val("--engines=");
                opt.matrix.engines =
                    v == "all" ? engineNames() : splitCsv(v);
                opt.matrixTouched = true;
            } else if (arg.rfind("--benches=", 0) == 0) {
                const std::string v = val("--benches=");
                opt.matrix.benches =
                    v == "all" ? benchmarkNames() : splitCsv(v);
                opt.matrixTouched = true;
            } else if (arg.rfind("--scales=", 0) == 0) {
                opt.matrix.scales = parseListOrDie(
                    val("--scales="), "scale",
                    [](const std::string &s) { return std::stod(s); });
                opt.matrixTouched = true;
            } else if (arg.rfind("--seeds=", 0) == 0) {
                opt.matrix.seeds = parseListOrDie(
                    val("--seeds="), "seed", [](const std::string &s) {
                        return std::uint64_t{std::stoull(s)};
                    });
                opt.matrixTouched = true;
            } else if (arg.rfind("--crash-at=", 0) == 0) {
                opt.matrix.crashFractions = parseListOrDie(
                    val("--crash-at="), "crash fraction",
                    [](const std::string &s) { return std::stod(s); });
                opt.matrixTouched = true;
            } else if (arg == "--check") {
                opt.matrix.check = true;
                opt.matrixTouched = true;
            } else if (arg.rfind("--cores=", 0) == 0) {
                opt.matrix.cores = static_cast<unsigned>(
                    std::stoul(val("--cores=")));
                opt.matrixTouched = true;
            } else if (arg.rfind("--ag-max-lines=", 0) == 0) {
                opt.matrix.agMaxLines = static_cast<unsigned>(
                    std::stoul(val("--ag-max-lines=")));
                opt.matrixTouched = true;
            } else if (arg.rfind("--agb-slice-lines=", 0) == 0) {
                opt.matrix.agbSliceLines = static_cast<unsigned>(
                    std::stoul(val("--agb-slice-lines=")));
                opt.matrixTouched = true;
            } else if (arg.rfind("--name=", 0) == 0) {
                opt.matrix.name = val("--name=");
                opt.matrixTouched = true;
            } else if (arg == "--help" || arg == "-h") {
                usage(0);
            } else {
                std::fprintf(stderr, "unknown option: %s\n",
                             arg.c_str());
                usage(2);
            }
        } catch (const std::exception &) {
            std::fprintf(stderr, "bad value in %s\n", arg.c_str());
            usage(2);
        }
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions opt = parseCli(argc, argv);

    if (opt.listCampaigns) {
        for (const BuiltinCampaign &c : builtinCampaigns())
            std::printf("%-18s %4zu cells  %s\n", c.name.c_str(),
                        c.spec.cellCount(), c.description.c_str());
        return 0;
    }

    // Worker mode: no spec, no report — cells arrive on the wire and
    // results go back the same way.
    if (!opt.connectTo.empty()) {
        if (opt.serve || opt.workersLocal) {
            std::fprintf(stderr,
                         "--connect excludes --serve/--workers-local\n");
            usage(2);
        }
        const std::size_t colon = opt.connectTo.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 == opt.connectTo.size()) {
            std::fprintf(stderr,
                         "--connect expects HOST:PORT, got '%s'\n",
                         opt.connectTo.c_str());
            usage(2);
        }
        WorkerOptions w;
        w.host = opt.connectTo.substr(0, colon);
        w.port = static_cast<std::uint16_t>(
            parseBoundedOrDie(opt.connectTo.substr(colon + 1),
                              "--connect port", 1, 65'535));
        w.name = opt.workerName;
        w.jobs = opt.jobs ? opt.jobs : 1;
        w.fault = opt.fault;
        w.dieAfterResults = opt.dieAfter;
        if (opt.isolate == "subprocess") {
            w.runner.isolation = Isolation::Subprocess;
            w.runner.subprocess.simBinary = opt.simBin;
            w.runner.subprocess.memLimitMb = opt.memLimitMb;
        }
        if (opt.backoffMs >= 0)
            w.runner.backoffBaseMs =
                static_cast<unsigned>(opt.backoffMs);
        if (!opt.quiet)
            w.progress = &std::cerr;
        WorkerStats stats;
        const int code = runWorker(w, &stats);
        if (!opt.quiet)
            std::fprintf(stderr, "%s\n", stats.summary().c_str());
        return code;
    }
    if (opt.workersLocal && !opt.serve) {
        std::fprintf(stderr, "--workers-local requires --serve\n");
        usage(2);
    }
    if (opt.chaosKillWorker && !opt.workersLocal) {
        std::fprintf(stderr,
                     "--chaos-kill-worker requires --workers-local\n");
        usage(2);
    }

    const int sources = (opt.campaignName.empty() ? 0 : 1) +
                        (opt.specFile.empty() ? 0 : 1) +
                        (opt.matrixTouched ? 1 : 0);
    if (sources != 1) {
        std::fprintf(stderr,
                     "pick exactly one of --campaign, --spec, or "
                     "matrix flags\n");
        usage(2);
    }

    CampaignSpec spec;
    if (!opt.campaignName.empty()) {
        const BuiltinCampaign *builtin =
            findBuiltinCampaign(opt.campaignName);
        if (!builtin) {
            std::fprintf(stderr,
                         "unknown campaign: %s (see --list-campaigns)\n",
                         opt.campaignName.c_str());
            return 3;
        }
        spec = builtin->spec;
    } else if (!opt.specFile.empty()) {
        std::string err;
        if (!loadSpecFile(opt.specFile, &spec, &err)) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 3;
        }
    } else {
        spec = opt.matrix;
    }

    // The threads override rides on top of whichever spec source won:
    // it shapes the host's thread budget (jobs x threads), not the
    // simulated machine, so sweeping it over a built-in campaign must
    // not require editing the spec (docs/campaigns.md, "Sweeping the
    // threads axis").
    if (opt.threads >= 0)
        spec.threads = static_cast<unsigned>(opt.threads);

    const std::string invalid = validateSpec(spec);
    if (!invalid.empty()) {
        std::fprintf(stderr, "invalid campaign: %s\n", invalid.c_str());
        return 3;
    }

    const std::vector<RunRequest> cells = expand(spec);
    if (opt.dryRun) {
        for (const RunRequest &r : cells)
            std::printf("%s\n", r.id.c_str());
        std::printf("%zu cells\n", cells.size());
        return 0;
    }

    // --resume=DIR means "continue the sweep living in DIR": the
    // journal is loaded from there, and unless --out says otherwise
    // the report lands there too.
    const bool resuming = !opt.resumeDir.empty();
    if (resuming && !opt.outTouched)
        opt.out = opt.resumeDir + "/" + opt.out;

    RunnerOptions runner;
    runner.jobs = opt.jobs;
    runner.timeout = std::chrono::milliseconds(
        opt.timeoutMs >= 0 ? opt.timeoutMs
                           : static_cast<int>(spec.timeoutMs));
    runner.retries = opt.retries >= 0
                         ? static_cast<unsigned>(opt.retries)
                         : spec.retries;
    if (opt.backoffMs >= 0)
        runner.backoffBaseMs = static_cast<unsigned>(opt.backoffMs);
    if (opt.isolate == "subprocess") {
        runner.isolation = Isolation::Subprocess;
        runner.subprocess.simBinary = opt.simBin;
        runner.subprocess.memLimitMb = opt.memLimitMb;
    }
    if (!opt.quiet)
        runner.progress = &std::cerr;

    JournalIndex resumeIndex;
    if (resuming) {
        const std::string jpath = opt.resumeDir + "/journal.jsonl";
        std::string err;
        std::string warn;
        if (!loadJournal(jpath, &resumeIndex, &err, &warn)) {
            std::fprintf(stderr, "cannot resume: %s\n", err.c_str());
            return 4;
        }
        if (!warn.empty())
            std::fprintf(stderr, "warning: %s\n", warn.c_str());
        if (!resumeIndex.campaign.empty() &&
            resumeIndex.campaign != spec.name) {
            std::fprintf(stderr,
                         "cannot resume: journal %s belongs to "
                         "campaign '%s', not '%s'\n",
                         jpath.c_str(), resumeIndex.campaign.c_str(),
                         spec.name.c_str());
            return 4;
        }
        runner.resumeFrom = &resumeIndex;
    }

    {
        // Fail before the campaign runs, not after, if the report
        // path is unwritable.  Append mode leaves an existing report
        // intact when a later step aborts.  This runs after the
        // resume load so a bad --resume directory names the journal,
        // not the report, in its error.
        std::ofstream probe(opt.out, std::ios::app);
        if (!probe) {
            std::fprintf(stderr, "cannot open for writing: %s\n",
                         opt.out.c_str());
            return 4;
        }
    }

    CampaignJournal journal;
    if (!opt.noJournal) {
        const std::string jpath = journalPathFor(opt.out);
        std::string err;
        if (!journal.open(jpath, spec.name, /*truncate=*/!resuming,
                          &err)) {
            // A read-only results directory should not kill the sweep;
            // it just loses resumability.
            std::fprintf(stderr, "warning: %s; continuing without a "
                                 "journal\n",
                         err.c_str());
        } else {
            runner.journal = &journal;
        }
    }

    std::printf("campaign %s: %zu cells on %u jobs%s\n",
                spec.name.c_str(), cells.size(),
                runner.jobs ? runner.jobs
                            : std::thread::hardware_concurrency(),
                runner.isolation == Isolation::Subprocess
                    ? " (subprocess isolation)"
                    : "");

    CampaignReport report;
    if (opt.serve) {
        std::vector<pid_t> workerPids;
        bool chaosKilled = false;

        CoordinatorOptions co;
        co.port = static_cast<std::uint16_t>(opt.servePort);
        co.runner = runner;
        co.heartbeatTimeoutMs = opt.heartbeatTimeoutMs;
        co.stragglerMs = opt.stragglerMs;
        co.graceMs = opt.graceMs;
        co.localFallback = opt.localFallback;
        co.fault = opt.fault;
        if (opt.chaosKillWorker)
            co.onResult = [&](std::size_t merged) {
                if (chaosKilled || merged < opt.chaosKillWorker ||
                    workerPids.empty())
                    return;
                chaosKilled = true;
                std::fprintf(stderr,
                             "chaos: SIGKILL worker pid %d after %zu "
                             "merged result%s\n",
                             static_cast<int>(workerPids.front()),
                             merged, merged == 1 ? "" : "s");
                ::kill(workerPids.front(), SIGKILL);
            };

        Coordinator coord(std::move(co));
        std::string err;
        if (!coord.listen(&err)) {
            std::fprintf(stderr, "cannot serve: %s\n", err.c_str());
            return 4;
        }
        std::printf("serving campaign %s on port %u\n",
                    spec.name.c_str(), coord.port());
        std::fflush(stdout);

        // Loopback workers: fork+exec this very binary in --connect
        // mode.  CI's way of getting a real multi-process fabric on
        // one machine.
        const std::string self = [] {
            char buf[4096];
            const ssize_t n =
                ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
            if (n <= 0)
                return std::string("tsoper_campaign");
            buf[n] = '\0';
            return std::string(buf);
        }();
        for (unsigned i = 0; i < opt.workersLocal; ++i) {
            std::vector<std::string> wargv = {
                self,
                "--connect=127.0.0.1:" + std::to_string(coord.port()),
                "--worker-name=local-" + std::to_string(i),
                "--jobs=" + std::to_string(opt.jobs ? opt.jobs : 1),
            };
            if (opt.isolate == "subprocess") {
                wargv.push_back("--isolate=subprocess");
                if (!opt.simBin.empty())
                    wargv.push_back("--sim-bin=" + opt.simBin);
                if (opt.memLimitMb)
                    wargv.push_back("--mem-limit-mb=" +
                                    std::to_string(opt.memLimitMb));
            }
            if (opt.quiet)
                wargv.push_back("--quiet");
            if (opt.dieAfter && i == 0)
                wargv.push_back("--die-after=" +
                                std::to_string(opt.dieAfter));
            const pid_t pid = ::fork();
            if (pid < 0) {
                std::fprintf(stderr, "fork worker: %s\n",
                             std::strerror(errno));
                break;
            }
            if (pid == 0) {
                std::vector<char *> cargv;
                for (std::string &a : wargv)
                    cargv.push_back(a.data());
                cargv.push_back(nullptr);
                ::execv(cargv[0], cargv.data());
                std::fprintf(stderr, "exec %s: %s\n", cargv[0],
                             std::strerror(errno));
                ::_exit(127);
            }
            workerPids.push_back(pid);
        }

        report = coord.run(spec.name, cells);

        for (pid_t pid : workerPids) {
            int wstatus = 0;
            pid_t got;
            do {
                got = ::waitpid(pid, &wstatus, 0);
            } while (got < 0 && errno == EINTR);
        }
        if (!opt.quiet)
            std::fprintf(stderr, "%s\n",
                         coord.stats().summary().c_str());
    } else {
        report = runCampaign(spec.name, cells, runner);
    }
    journal.close();

    std::string err;
    if (!writeReportFile(report, opt.out, &err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 4;
    }
    if (!opt.canonicalOut.empty()) {
        std::ofstream os(opt.canonicalOut);
        os << canonicalReportJson(report).dump(2) << "\n";
        os.flush();
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.canonicalOut.c_str());
            return 4;
        }
    }
    std::printf("%s\nreport written to %s (%.0f ms wall)\n",
                report.summary().c_str(), opt.out.c_str(),
                report.wallMs);

    if (const unsigned orphans = liveOrphanCount())
        std::fprintf(stderr,
                     "warning: %u timed-out attempt thread%s still "
                     "running detached; %s with the process "
                     "(use --isolate=subprocess for hard kills)\n",
                     orphans, orphans == 1 ? "" : "s",
                     orphans == 1 ? "it dies" : "they die");

    if (opt.verifyOut &&
        !verifyReportFile(opt.out, /*requireAllOk=*/true, &err)) {
        std::fprintf(stderr, "report verification failed: %s\n",
                     err.c_str());
        return 4;
    }
    return report.allOk() ? 0 : 1;
}
