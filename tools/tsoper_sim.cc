/**
 * @file
 * tsoper_sim — the command-line simulator driver.
 *
 *   tsoper_sim --engine=tsoper --bench=ocean_cp --scale=0.5 --stats
 *   tsoper_sim --engine=stw --trace=my.trace --crash-at=0.5 --check
 *   tsoper_sim --list-benchmarks
 *   tsoper_sim --engine=tsoper --bench=radix --save-trace=radix.trace
 *
 * Options:
 *   --engine=<baseline|baseline-mesi|hwrp|bsp|bsp-slc|bsp-slc-agb|
 *             stw|tsoper>                       (default tsoper)
 *   --bench=<name>         workload profile     (default ocean_cp)
 *   --trace=<file>         drive from a trace file instead
 *   --scale=<f>            workload scale       (default 1.0)
 *   --seed=<n>             workload seed        (default 1)
 *   --cores=<n>            core count           (default 8)
 *   --ag-max-lines=<n>     atomic group cap
 *   --agb-slice-lines=<n>  AGB slice capacity
 *   --crash-at=<c|f>       crash at cycle c (>1) or fraction f of the
 *                          run (0<f<=1); implies a prior timing run
 *   --check                audit the durable state (strict TSO, or the
 *                          SFR contract for --engine=hwrp)
 *   --stats                dump all statistics
 *   --stats-out=<file>     write statistics to a file
 *   --save-trace=<file>    save the generated workload and exit
 *   --describe             print the configuration and exit
 *   --list-benchmarks      print available profiles and exit
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "core/recovery.hh"
#include "core/system.hh"
#include "workload/generators.hh"
#include "workload/trace_io.hh"

using namespace tsoper;

namespace
{

struct CliOptions
{
    std::string engine = "tsoper";
    std::string bench = "ocean_cp";
    std::string traceFile;
    std::string saveTrace;
    std::string statsOut;
    double scale = 1.0;
    std::uint64_t seed = 1;
    unsigned cores = 8;
    unsigned agMaxLines = 0;
    unsigned agbSliceLines = 0;
    double crashAt = 0.0;
    bool check = false;
    bool stats = false;
    bool describe = false;
    bool listBenchmarks = false;
};

[[noreturn]] void
usage(int code)
{
    std::printf("usage: tsoper_sim [--engine=E] [--bench=B|--trace=F] "
                "[--scale=F] [--seed=N]\n"
                "                  [--cores=N] [--crash-at=C] [--check] "
                "[--stats] [--stats-out=F]\n"
                "                  [--save-trace=F] [--describe] "
                "[--list-benchmarks]\n");
    std::exit(code);
}

EngineKind
parseEngine(const std::string &name, ProtocolKind *forceProtocol)
{
    if (name == "baseline")
        return EngineKind::None;
    if (name == "baseline-mesi") {
        *forceProtocol = ProtocolKind::Mesi;
        return EngineKind::None;
    }
    if (name == "hwrp")
        return EngineKind::HwRp;
    if (name == "bsp")
        return EngineKind::Bsp;
    if (name == "bsp-slc")
        return EngineKind::BspSlc;
    if (name == "bsp-slc-agb")
        return EngineKind::BspSlcAgb;
    if (name == "stw")
        return EngineKind::Stw;
    if (name == "tsoper")
        return EngineKind::Tsoper;
    std::fprintf(stderr, "unknown engine: %s\n", name.c_str());
    usage(2);
}

CliOptions
parseCli(int argc, char **argv)
{
    CliOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto val = [&](const char *prefix) -> std::string {
            return arg.substr(std::string(prefix).size());
        };
        if (arg.rfind("--engine=", 0) == 0)
            opt.engine = val("--engine=");
        else if (arg.rfind("--bench=", 0) == 0)
            opt.bench = val("--bench=");
        else if (arg.rfind("--trace=", 0) == 0)
            opt.traceFile = val("--trace=");
        else if (arg.rfind("--save-trace=", 0) == 0)
            opt.saveTrace = val("--save-trace=");
        else if (arg.rfind("--stats-out=", 0) == 0)
            opt.statsOut = val("--stats-out=");
        else if (arg.rfind("--scale=", 0) == 0)
            opt.scale = std::stod(val("--scale="));
        else if (arg.rfind("--seed=", 0) == 0)
            opt.seed = std::stoull(val("--seed="));
        else if (arg.rfind("--cores=", 0) == 0)
            opt.cores = static_cast<unsigned>(
                std::stoul(val("--cores=")));
        else if (arg.rfind("--ag-max-lines=", 0) == 0)
            opt.agMaxLines = static_cast<unsigned>(
                std::stoul(val("--ag-max-lines=")));
        else if (arg.rfind("--agb-slice-lines=", 0) == 0)
            opt.agbSliceLines = static_cast<unsigned>(
                std::stoul(val("--agb-slice-lines=")));
        else if (arg.rfind("--crash-at=", 0) == 0)
            opt.crashAt = std::stod(val("--crash-at="));
        else if (arg == "--check")
            opt.check = true;
        else if (arg == "--stats")
            opt.stats = true;
        else if (arg == "--describe")
            opt.describe = true;
        else if (arg == "--list-benchmarks")
            opt.listBenchmarks = true;
        else if (arg == "--help" || arg == "-h")
            usage(0);
        else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(2);
        }
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions opt = parseCli(argc, argv);

    if (opt.listBenchmarks) {
        for (const Profile &p : allProfiles())
            std::printf("%-14s ops/core=%-6u write=%.2f shared=%.2f "
                        "locks=%u\n",
                        p.name.c_str(), p.opsPerCore, p.writeFrac,
                        p.sharedFrac, p.numLocks);
        return 0;
    }

    ProtocolKind forced = ProtocolKind::Slc;
    const EngineKind engine = parseEngine(opt.engine, &forced);
    SystemConfig cfg = makeConfig(engine);
    if (opt.engine == "baseline-mesi")
        cfg.protocol = forced;
    cfg.numCores = opt.cores;
    if (opt.cores > 8) {
        cfg.meshCols = 6;
        cfg.meshRows = (opt.cores + cfg.llcBanks + 5) / 6;
    }
    if (opt.agMaxLines)
        cfg.agMaxLines = opt.agMaxLines;
    if (opt.agbSliceLines)
        cfg.agbSliceLines = opt.agbSliceLines;
    cfg.recordStores = opt.check;
    cfg.seed = opt.seed;

    if (opt.describe) {
        cfg.describe(std::cout);
        return 0;
    }

    const Workload w =
        opt.traceFile.empty()
            ? generateByName(opt.bench, cfg.numCores, opt.seed,
                             opt.scale)
            : loadWorkloadFile(opt.traceFile);
    std::string error;
    if (!validateWorkload(w, &error)) {
        std::fprintf(stderr, "invalid workload: %s\n", error.c_str());
        return 1;
    }
    if (!opt.saveTrace.empty()) {
        saveWorkloadFile(w, opt.saveTrace);
        std::printf("saved %zu-op workload to %s\n", w.totalOps(),
                    opt.saveTrace.c_str());
        return 0;
    }

    std::printf("engine=%s workload=%s ops=%zu stores=%zu cores=%u\n",
                toString(cfg.engine), w.name.c_str(), w.totalOps(),
                w.totalStores(), cfg.numCores);

    if (opt.crashAt > 0.0) {
        Cycle crashCycle = static_cast<Cycle>(opt.crashAt);
        if (opt.crashAt <= 1.0) {
            System timing(cfg, w);
            const Cycle full = timing.run();
            crashCycle = static_cast<Cycle>(
                static_cast<double>(full) * opt.crashAt);
        }
        System sys(cfg, w);
        sys.runUntilCrash(crashCycle);
        std::printf("crashed at cycle %llu\n",
                    static_cast<unsigned long long>(crashCycle));
        const PersistModel model = engine == EngineKind::HwRp
                                       ? PersistModel::RelaxedSfr
                                       : PersistModel::StrictTso;
        const RecoveryReport report = recover(sys, model);
        std::printf("%s\n", report.summary().c_str());
        if (opt.stats)
            sys.stats().dump(std::cout);
        return (report.audited && !report.consistency.ok) ? 1 : 0;
    }

    System sys(cfg, w);
    const Cycle cycles = sys.run();
    std::printf("finished in %llu cycles (+%llu drain)\n",
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(
                    sys.stats().get("sys.drain_cycles")));
    if (opt.check) {
        const PersistModel model = engine == EngineKind::HwRp
                                       ? PersistModel::RelaxedSfr
                                       : PersistModel::StrictTso;
        const RecoveryReport report = recover(sys, model);
        std::printf("%s\n", report.summary().c_str());
        if (report.audited && !report.consistency.ok)
            return 1;
    }
    if (opt.stats)
        sys.stats().dump(std::cout);
    if (!opt.statsOut.empty()) {
        std::ofstream os(opt.statsOut);
        sys.stats().dump(os);
        std::printf("stats written to %s\n", opt.statsOut.c_str());
    }
    return 0;
}
