/**
 * @file
 * tsoper_sim — the command-line simulator driver.
 *
 * A thin wrapper over campaign::runOne(): the option struct maps 1:1
 * onto a campaign::RunRequest, so a CLI invocation and a campaign
 * cell execute identical code paths (src/campaign/run_request.cc).
 *
 *   tsoper_sim --engine=tsoper --bench=ocean_cp --scale=0.5 --stats
 *   tsoper_sim --engine=stw --trace=my.trace --crash-at=0.5 --check
 *   tsoper_sim --list-benchmarks
 *   tsoper_sim --engine=tsoper --bench=radix --save-trace=radix.trace
 *
 * Options:
 *   --engine=<baseline|baseline-mesi|hwrp|bsp|bsp-slc|bsp-slc-agb|
 *             stw|tsoper>                       (default tsoper)
 *   --bench=<name>         workload profile     (default ocean_cp)
 *   --trace=<file|cats>    drive from a trace file — or, when every
 *                          comma token is a structured-trace category
 *                          ("ag,agb,slc" / "all"), enable those trace
 *                          categories; --trace-file= /
 *                          --trace-categories= disambiguate
 *   --scale=<f>            workload scale       (default 1.0)
 *   --seed=<n>             workload seed        (default 1)
 *   --cores=<n>            core count           (default 8)
 *   --threads=<n>          event-kernel threads (default 1; results
 *                          are byte-identical at any value; clamped to
 *                          the hardware CPU count with a warning
 *                          unless TSOPER_FORCE_THREADS is set)
 *   --ag-max-lines=<n>     atomic group cap
 *   --agb-slice-lines=<n>  AGB slice capacity
 *   --crash-at=<c|f>       crash at cycle c (>1) or fraction f of the
 *                          run (0<f<=1); implies a prior timing run
 *   --check                audit the durable state (strict TSO, or the
 *                          SFR contract for --engine=hwrp)
 *   --stats                dump all statistics
 *   --stats-out=<file>     write statistics to a file (text table)
 *   --stats-json=<file>    write statistics to a file (JSON; schema in
 *                          docs/campaigns.md)
 *   --save-trace=<file>    save the generated workload and exit
 *   --describe             print the configuration and exit
 *   --list-benchmarks      print available profiles and exit
 *   --max-cycles=<n>       simulated-cycle budget (default 4e9)
 *   --trace-out=<file>     export the run as Chrome/Perfetto
 *                          trace_event JSON (docs/observability.md)
 *   --audit-persists       collect the persist stream and verify it is
 *                          a valid strict-persistency order
 *   --audit-fault=reorder  corrupt the audit log before checking, to
 *                          prove the checker rejects invalid orders
 *   --flight-recorder=<n>  keep the last n trace records for crash /
 *                          hang dumps
 *   --list-debug-flags     print TSOPER_DEBUG flags and structured-
 *                          trace categories, then exit
 *   --result-json=<file>   write the full campaign::RunResult as JSON
 *                          (the subprocess executor's wire format)
 *   --selftest=<mode>      fault-injection hooks for the subprocess
 *                          executor's tests: "segv" raises SIGSEGV,
 *                          "hang" sleeps forever (until SIGKILL),
 *                          "gulp" allocates until the rlimit kills it
 *
 * Exit codes (stable; the campaign runner and scripts classify on
 * them — keep docs/campaigns.md in sync):
 *   0  success (with --check / --crash-at: the audit passed)
 *   1  consistency audit failed
 *   2  usage error (unknown option or malformed value)
 *   3  unknown --engine
 *   4  unknown --bench
 *   5  invalid workload (bad trace file or failed validation)
 *   6  simulation error (internal panic/fatal, e.g. deadlock)
 *   7  hung (the progress watchdog proved a livelock, or the
 *      simulated-cycle budget ran out)
 */

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "campaign/run_request.hh"
#include "core/system.hh"
#include "sim/debug.hh"
#include "sim/stats_json.hh"
#include "sim/trace.hh"
#include "workload/generators.hh"
#include "workload/trace_io.hh"

using namespace tsoper;

namespace
{

enum ExitCode
{
    ExitOk = 0,
    ExitCheckFailed = 1,
    ExitUsage = 2,
    ExitUnknownEngine = 3,
    ExitUnknownBench = 4,
    ExitInvalidWorkload = 5,
    ExitSimError = 6,
    ExitHung = 7,
};

struct CliOptions
{
    campaign::RunRequest run;
    std::string saveTrace;
    std::string statsOut;
    std::string statsJson;
    std::string resultJson;
    std::string selftest;
    bool stats = false;
    bool describe = false;
    bool listBenchmarks = false;
    bool listDebugFlags = false;
};

/** Is @p csv entirely structured-trace category names ("ag,slc",
 *  "all")?  Distinguishes --trace=<categories> from --trace=<file>. */
bool
looksLikeTraceCategories(const std::string &csv)
{
    if (csv.empty())
        return false;
    const std::vector<std::string> &names = trace::categoryNames();
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        const std::size_t comma = csv.find(',', pos);
        const std::string tok =
            csv.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
        if (tok != "all" &&
            std::find(names.begin(), names.end(), tok) == names.end())
            return false;
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return true;
}

/**
 * Deliberate misbehaviour for the subprocess executor's ctest: a
 * SIGSEGV-ing, a hanging, and an over-rlimit child must all be
 * contained, classified, and reaped (docs/campaigns.md "Isolation
 * modes").
 */
[[noreturn]] void
runSelftest(const std::string &mode)
{
    if (mode == "segv") {
        std::raise(SIGSEGV);
    } else if (mode == "hang") {
        for (;;)
            ::pause(); // burn no CPU; die only by signal
    } else if (mode == "gulp") {
        // Allocate-and-touch until RLIMIT_AS stops us (bad_alloc ->
        // std::terminate -> SIGABRT).  Hard 1 GiB cap so a run
        // without an rlimit terminates instead of eating the host.
        std::vector<std::unique_ptr<char[]>> hoard;
        constexpr std::size_t chunk = 16u << 20;
        for (std::size_t total = 0; total < (1u << 30); total += chunk) {
            hoard.push_back(std::make_unique<char[]>(chunk));
            for (std::size_t i = 0; i < chunk; i += 4096)
                hoard.back()[i] = 1;
        }
        std::exit(ExitOk);
    }
    std::fprintf(stderr, "unknown --selftest mode: %s\n", mode.c_str());
    std::exit(ExitUsage);
}

[[noreturn]] void
usage(int code)
{
    std::printf("usage: tsoper_sim [--engine=E] [--bench=B|--trace=F] "
                "[--scale=F] [--seed=N]\n"
                "                  [--cores=N] [--threads=N] [--crash-at=C] "
                "[--check] [--stats] [--stats-out=F]\n"
                "                  [--stats-json=F] [--result-json=F] "
                "[--max-cycles=N]\n"
                "                  [--trace-out=F] [--trace-categories=C] "
                "[--audit-persists]\n"
                "                  [--audit-fault=reorder] "
                "[--flight-recorder=N] [--list-debug-flags]\n"
                "                  [--save-trace=F] [--describe] "
                "[--list-benchmarks]\n");
    std::exit(code);
}

CliOptions
parseCli(int argc, char **argv)
{
    CliOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto val = [&](const char *prefix) -> std::string {
            return arg.substr(std::string(prefix).size());
        };
        try {
            if (arg.rfind("--engine=", 0) == 0)
                opt.run.engine = val("--engine=");
            else if (arg.rfind("--bench=", 0) == 0)
                opt.run.bench = val("--bench=");
            else if (arg.rfind("--trace=", 0) == 0) {
                const std::string v = val("--trace=");
                if (looksLikeTraceCategories(v))
                    opt.run.traceCategories = v;
                else
                    opt.run.traceFile = v;
            } else if (arg.rfind("--trace-file=", 0) == 0)
                opt.run.traceFile = val("--trace-file=");
            else if (arg.rfind("--trace-categories=", 0) == 0)
                opt.run.traceCategories = val("--trace-categories=");
            else if (arg.rfind("--trace-out=", 0) == 0)
                opt.run.traceOut = val("--trace-out=");
            else if (arg == "--audit-persists")
                opt.run.auditPersists = true;
            else if (arg.rfind("--audit-fault=", 0) == 0)
                opt.run.auditFault = val("--audit-fault=");
            else if (arg.rfind("--flight-recorder=", 0) == 0)
                opt.run.flightRecorder = static_cast<unsigned>(
                    std::stoul(val("--flight-recorder=")));
            else if (arg == "--list-debug-flags")
                opt.listDebugFlags = true;
            else if (arg.rfind("--save-trace=", 0) == 0)
                opt.saveTrace = val("--save-trace=");
            else if (arg.rfind("--stats-out=", 0) == 0)
                opt.statsOut = val("--stats-out=");
            else if (arg.rfind("--stats-json=", 0) == 0)
                opt.statsJson = val("--stats-json=");
            else if (arg.rfind("--result-json=", 0) == 0)
                opt.resultJson = val("--result-json=");
            else if (arg.rfind("--selftest=", 0) == 0)
                opt.selftest = val("--selftest=");
            else if (arg.rfind("--max-cycles=", 0) == 0)
                opt.run.maxCycles = std::stoull(val("--max-cycles="));
            else if (arg.rfind("--scale=", 0) == 0)
                opt.run.scale = std::stod(val("--scale="));
            else if (arg.rfind("--seed=", 0) == 0)
                opt.run.seed = std::stoull(val("--seed="));
            else if (arg.rfind("--cores=", 0) == 0)
                opt.run.cores = static_cast<unsigned>(
                    std::stoul(val("--cores=")));
            else if (arg.rfind("--threads=", 0) == 0)
                opt.run.threads = static_cast<unsigned>(
                    std::stoul(val("--threads=")));
            else if (arg.rfind("--ag-max-lines=", 0) == 0)
                opt.run.agMaxLines = static_cast<unsigned>(
                    std::stoul(val("--ag-max-lines=")));
            else if (arg.rfind("--agb-slice-lines=", 0) == 0)
                opt.run.agbSliceLines = static_cast<unsigned>(
                    std::stoul(val("--agb-slice-lines=")));
            else if (arg.rfind("--crash-at=", 0) == 0)
                opt.run.crashAt = std::stod(val("--crash-at="));
            else if (arg == "--check")
                opt.run.check = true;
            else if (arg == "--stats")
                opt.stats = true;
            else if (arg == "--describe")
                opt.describe = true;
            else if (arg == "--list-benchmarks")
                opt.listBenchmarks = true;
            else if (arg == "--help" || arg == "-h")
                usage(0);
            else {
                std::fprintf(stderr, "unknown option: %s\n",
                             arg.c_str());
                usage(ExitUsage);
            }
        } catch (const std::exception &) {
            std::fprintf(stderr, "malformed value in %s\n",
                         arg.c_str());
            usage(ExitUsage);
        }
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions opt = parseCli(argc, argv);

    if (!opt.selftest.empty())
        runSelftest(opt.selftest);

    // Oversubscribing the kernel's worker pool only burns wall-clock
    // (results are byte-identical at any thread count), so clamp to
    // the hardware unless the user insists — the determinism ctests
    // insist, since CI hosts may expose a single CPU.
    if (opt.run.threads > 1 && !std::getenv("TSOPER_FORCE_THREADS")) {
        const unsigned hw =
            std::max(1u, std::thread::hardware_concurrency());
        if (opt.run.threads > hw) {
            std::fprintf(stderr,
                         "warning: --threads=%u exceeds the %u hardware "
                         "CPU%s; clamping (TSOPER_FORCE_THREADS=1 "
                         "forces oversubscription)\n",
                         opt.run.threads, hw, hw == 1 ? "" : "s");
            opt.run.threads = hw;
        }
    }

    if (opt.listBenchmarks) {
        for (const Profile &p : allProfiles())
            std::printf("%-14s ops/core=%-6u write=%.2f shared=%.2f "
                        "locks=%u\n",
                        p.name.c_str(), p.opsPerCore, p.writeFrac,
                        p.sharedFrac, p.numLocks);
        return ExitOk;
    }

    if (opt.listDebugFlags) {
        std::printf("debug flags (TSOPER_DEBUG=, comma-separated; "
                    "'all' enables everything):\n");
        for (const std::string &name : debug::flagNames())
            std::printf("  %s\n", name.c_str());
        std::printf("trace categories (--trace-categories=, "
                    "--trace=):\n");
        for (const std::string &name : trace::categoryNames())
            std::printf("  %s\n", name.c_str());
        return ExitOk;
    }

    // Resolve the engine up front: --describe and --save-trace need
    // the config before any run, and unknown names must exit 3.
    SystemConfig cfg;
    std::string err;
    if (!campaign::resolveConfig(opt.run, &cfg, &err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return ExitUnknownEngine;
    }
    if (opt.run.traceFile.empty() && !findProfile(opt.run.bench)) {
        std::fprintf(stderr, "unknown benchmark: %s\n",
                     opt.run.bench.c_str());
        return ExitUnknownBench;
    }

    if (opt.describe) {
        cfg.describe(std::cout);
        return ExitOk;
    }

    if (!opt.saveTrace.empty()) {
        try {
            const Workload w =
                opt.run.traceFile.empty()
                    ? generateByName(opt.run.bench, cfg.numCores,
                                     opt.run.seed, opt.run.scale)
                    : loadWorkloadFile(opt.run.traceFile);
            saveWorkloadFile(w, opt.saveTrace);
            std::printf("saved %zu-op workload to %s\n", w.totalOps(),
                        opt.saveTrace.c_str());
            return ExitOk;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return ExitInvalidWorkload;
        }
    }

    // Capture the stats dumps inside the hook (the System is only
    // alive there) but print them after the banner/result lines, in
    // the seed CLI's output order.
    std::string statsText;
    campaign::RunHooks hooks;
    hooks.onFinished = [&](System &sys) {
        if (opt.stats) {
            std::ostringstream os;
            sys.stats().dump(os);
            statsText = os.str();
        }
        if (!opt.statsOut.empty()) {
            std::ofstream os(opt.statsOut);
            sys.stats().dump(os);
        }
        if (!opt.statsJson.empty()) {
            std::ofstream os(opt.statsJson);
            os << statsJsonText(sys.stats()) << "\n";
        }
    };

    const campaign::RunResult res = campaign::runOne(opt.run, hooks);

    // The subprocess executor's wire format: write it for every
    // verdict runOne can produce, so the parent recovers the detail
    // and stats even for failed cells.
    if (!opt.resultJson.empty()) {
        std::ofstream os(opt.resultJson);
        os << campaign::runResultToJson(res).dump(2) << "\n";
        if (!os.flush()) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.resultJson.c_str());
            return ExitUsage;
        }
    }

    switch (res.status) {
      case campaign::RunStatus::BadRequest:
        std::fprintf(stderr, "%s\n", res.detail.c_str());
        return ExitInvalidWorkload;
      case campaign::RunStatus::Crashed:
        std::fprintf(stderr, "%s\n", res.detail.c_str());
        return ExitSimError;
      case campaign::RunStatus::Hung:
        std::fprintf(stderr, "%s\n", res.detail.c_str());
        return ExitHung;
      default:
        break;
    }

    std::printf("engine=%s workload=%s ops=%llu stores=%llu cores=%u\n",
                toString(cfg.engine),
                opt.run.traceFile.empty() ? opt.run.bench.c_str()
                                          : opt.run.traceFile.c_str(),
                static_cast<unsigned long long>(res.ops),
                static_cast<unsigned long long>(res.stores),
                cfg.numCores);
    if (opt.run.crashAt > 0.0)
        std::printf("crashed at cycle %llu\n",
                    static_cast<unsigned long long>(res.crashCycle));
    else
        std::printf("finished in %llu cycles (+%llu drain)\n",
                    static_cast<unsigned long long>(res.cycles),
                    static_cast<unsigned long long>(res.drainCycles));
    if (!res.recoverySummary.empty())
        std::printf("%s\n", res.recoverySummary.c_str());
    if (res.persistAudited) {
        std::printf("persist audit: %s (%llu commits, %llu groups, "
                    "%llu pb-edges)\n",
                    res.persistAuditOk ? "ok" : "FAILED",
                    static_cast<unsigned long long>(res.persistCommits),
                    static_cast<unsigned long long>(res.persistGroups),
                    static_cast<unsigned long long>(res.persistEdges));
        if (!res.persistAuditOk)
            std::printf("  %s\n", res.persistAuditDetail.c_str());
    }
    if (!opt.run.traceOut.empty())
        std::printf("trace written to %s\n", opt.run.traceOut.c_str());
    if (opt.stats)
        std::fputs(statsText.c_str(), stdout);
    if (!opt.statsOut.empty())
        std::printf("stats written to %s\n", opt.statsOut.c_str());
    if (!opt.statsJson.empty())
        std::printf("stats written to %s\n", opt.statsJson.c_str());

    return res.status == campaign::RunStatus::CheckFailed
               ? ExitCheckFailed
               : ExitOk;
}
